//! Flow graphs: the static structure of a DPS application.
//!
//! A flow graph is a DAG of operation declarations connected by directed
//! edges. Each edge carries a routing function (stored in
//! [`crate::app::Application`]); the graph itself holds only the topology so
//! it can be validated and displayed independently.
//!
//! The paper's flow graphs are acyclic, with recursion (e.g. the LU
//! factorization levels) expressed by *replicating* a portion of the graph
//! per level (its Figure 5). Implementations routinely roll that replication
//! back up: one operation instance serves every level, with the level index
//! carried in the data objects. The rolled graph contains cycles whose
//! unrolled form is acyclic, so [`FlowGraph::validate`] accepts cycles;
//! [`FlowGraph::is_acyclic`] is available for applications that want the
//! strict structural check on an unrolled graph.

use std::collections::BTreeMap;
use std::fmt;

/// Identifies an operation within a flow graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The fundamental DPS operation kinds.
///
/// The kinds describe the operation's role in the graph. Engines treat all
/// kinds uniformly — behaviour is supplied by the application — but the kind
/// drives validation (e.g. only split/stream operations may carry a
/// flow-control window) and trace labels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Divides incoming data objects into smaller subtask objects.
    Split,
    /// Processes one data object, producing (at most) one output.
    Leaf,
    /// Collects and aggregates results into a single output object.
    Merge,
    /// A merge combined with a subsequent split: streams out new data
    /// objects based on groups of incoming objects, refining the
    /// synchronization granularity to maximize pipelining.
    Stream,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Split => "split",
            OpKind::Leaf => "leaf",
            OpKind::Merge => "merge",
            OpKind::Stream => "stream",
        };
        f.write_str(s)
    }
}

/// Static description of one operation.
#[derive(Clone, Debug)]
pub struct OpDecl {
    /// The operation's id within the graph.
    pub id: OpId,
    /// Unique operation name.
    pub name: String,
    /// Split / leaf / merge / stream role.
    pub kind: OpKind,
}

/// An edge of the flow graph (router stored separately in the application).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeId(pub u32);

/// Declaration of one directed edge.
#[derive(Clone, Debug)]
pub struct EdgeDecl {
    /// The edge's id within the graph.
    pub id: EdgeId,
    /// Source operation.
    pub from: OpId,
    /// Destination operation.
    pub to: OpId,
}

/// The operation graph of a DPS application.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    ops: Vec<OpDecl>,
    edges: Vec<EdgeDecl>,
    by_name: BTreeMap<String, OpId>,
    /// edge lookup by (from, to)
    edge_index: BTreeMap<(OpId, OpId), EdgeId>,
}

/// Errors detected by [`FlowGraph::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// Two operations share a name.
    DuplicateOpName(String),
    /// The same (from, to) edge declared twice.
    DuplicateEdge(OpId, OpId),
    /// An edge references an undeclared operation.
    UnknownOp(OpId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateOpName(n) => write!(f, "duplicate operation name {n:?}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::UnknownOp(id) => write!(f, "edge references unknown operation {id}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl FlowGraph {
    /// Creates an empty instance.
    pub fn new() -> FlowGraph {
        FlowGraph::default()
    }

    /// Adds an operation; names must be unique (checked by `validate`).
    pub fn add_op(&mut self, name: &str, kind: OpKind) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpDecl {
            id,
            name: name.to_string(),
            kind,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Adds a directed edge `from -> to`.
    pub fn add_edge(&mut self, from: OpId, to: OpId) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeDecl { id, from, to });
        self.edge_index.insert((from, to), id);
        id
    }

    /// Looks up an operation declaration.
    pub fn op(&self, id: OpId) -> &OpDecl {
        &self.ops[id.0 as usize]
    }

    /// Looks up an operation id by name.
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an edge declaration.
    pub fn edge(&self, id: EdgeId) -> &EdgeDecl {
        &self.edges[id.0 as usize]
    }

    /// The edge `from -> to`, if declared.
    pub fn edge_between(&self, from: OpId, to: OpId) -> Option<EdgeId> {
        self.edge_index.get(&(from, to)).copied()
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over operation declarations.
    pub fn ops(&self) -> impl Iterator<Item = &OpDecl> {
        self.ops.iter()
    }

    /// Iterates over edge declarations.
    pub fn edges(&self) -> impl Iterator<Item = &EdgeDecl> {
        self.edges.iter()
    }

    /// Validates the graph: unique names, known endpoints, no duplicate
    /// edges. Cycles are allowed (see module docs).
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut seen = std::collections::BTreeSet::new();
        for op in &self.ops {
            if !seen.insert(op.name.as_str()) {
                return Err(GraphError::DuplicateOpName(op.name.clone()));
            }
        }
        let mut edge_seen = std::collections::BTreeSet::new();
        for e in &self.edges {
            for end in [e.from, e.to] {
                if end.0 as usize >= self.ops.len() {
                    return Err(GraphError::UnknownOp(end));
                }
            }
            if !edge_seen.insert((e.from, e.to)) {
                return Err(GraphError::DuplicateEdge(e.from, e.to));
            }
        }
        Ok(())
    }

    /// Whether the graph is a DAG (true for unrolled paper-style graphs;
    /// rolled multi-level graphs are legitimately cyclic).
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.from == e.to {
                return false;
            }
            indeg[e.to.0 as usize] += 1;
            succ[e.from.0 as usize].push(e.to.0 as usize);
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0;
        while let Some(i) = stack.pop() {
            visited += 1;
            for &j in &succ[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    stack.push(j);
                }
            }
        }
        visited == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (FlowGraph, OpId, OpId, OpId) {
        let mut g = FlowGraph::new();
        let a = g.add_op("split", OpKind::Split);
        let b = g.add_op("leaf", OpKind::Leaf);
        let c = g.add_op("merge", OpKind::Merge);
        g.add_edge(a, b);
        g.add_edge(b, c);
        (g, a, b, c)
    }

    #[test]
    fn valid_chain_passes() {
        let (g, a, b, c) = chain();
        g.validate().unwrap();
        assert_eq!(g.op_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.op_by_name("leaf"), Some(b));
        assert!(g.edge_between(a, b).is_some());
        assert!(g.edge_between(a, c).is_none());
        assert_eq!(g.op(a).kind, OpKind::Split);
        assert!(g.is_acyclic());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = FlowGraph::new();
        g.add_op("x", OpKind::Leaf);
        g.add_op("x", OpKind::Leaf);
        assert!(matches!(g.validate(), Err(GraphError::DuplicateOpName(_))));
    }

    #[test]
    fn cycles_are_valid_but_detected() {
        let mut g = FlowGraph::new();
        let a = g.add_op("a", OpKind::Stream);
        let b = g.add_op("b", OpKind::Leaf);
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.validate().unwrap();
        assert!(!g.is_acyclic());
    }

    #[test]
    fn self_loop_is_valid_but_cyclic() {
        let mut g = FlowGraph::new();
        let a = g.add_op("a", OpKind::Leaf);
        g.add_edge(a, a);
        g.validate().unwrap();
        assert!(!g.is_acyclic());
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = FlowGraph::new();
        let a = g.add_op("a", OpKind::Leaf);
        let b = g.add_op("b", OpKind::Leaf);
        g.add_edge(a, b);
        g.add_edge(a, b);
        assert_eq!(g.validate(), Err(GraphError::DuplicateEdge(a, b)));
    }

    #[test]
    fn diamond_is_acyclic() {
        let mut g = FlowGraph::new();
        let a = g.add_op("a", OpKind::Split);
        let b = g.add_op("b", OpKind::Leaf);
        let c = g.add_op("c", OpKind::Leaf);
        let d = g.add_op("d", OpKind::Merge);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g.validate().unwrap();
        assert!(g.is_acyclic());
    }

    #[test]
    fn kinds_display() {
        assert_eq!(OpKind::Stream.to_string(), "stream");
        assert_eq!(OpId(3).to_string(), "op3");
    }
}
