//! Routing functions.
//!
//! Every flow-graph edge carries a user-defined routing function evaluated at
//! runtime to select the DPS thread on which the destination operation
//! executes. Routers see the data object (so they can route by content, e.g.
//! "column block j goes to its owner thread") and a [`RouteCtx`] exposing the
//! source thread, a per-edge sequence number (for round-robin distribution)
//! and the deployment with its current active set (so that dynamically
//! removing threads automatically redistributes subsequent work — the
//! mechanism behind the paper's thread-removal experiments).

use netmodel::NodeId;

use crate::deploy::{ActiveSet, Deployment, ThreadId};
use crate::object::AnyDataObject;

/// Context available to routing functions.
pub struct RouteCtx<'a> {
    /// Thread that posted the data object.
    pub src_thread: ThreadId,
    /// Number of objects previously routed along this edge (monotone).
    pub edge_seq: u64,
    /// The static deployment.
    pub deployment: &'a Deployment,
    /// The dynamic activity state.
    pub active: &'a ActiveSet,
}

impl<'a> RouteCtx<'a> {
    /// Active threads of a group, in declaration order.
    pub fn active_in_group(&self, group: &str) -> Vec<ThreadId> {
        self.active.active_in(self.deployment, group)
    }

    /// All threads of a group regardless of activity (stable ownership).
    pub fn group_all(&self, group: &str) -> &[ThreadId] {
        self.deployment.group(group)
    }

    /// Node hosting a thread.
    pub fn node_of(&self, t: ThreadId) -> NodeId {
        self.deployment.node_of(t)
    }
}

/// A routing function: data object + context → destination thread.
pub type Router = Box<dyn Fn(&dyn AnyDataObject, &RouteCtx) -> ThreadId + Send + Sync>;

/// Routes round-robin over the *active* threads of `group`. Distribution
/// follows the per-edge sequence number, so it is deterministic and adapts
/// when threads are deactivated.
pub fn round_robin(group: &str) -> Router {
    let group = group.to_string();
    Box::new(move |_obj, ctx| {
        let active = ctx.active_in_group(&group);
        assert!(!active.is_empty(), "no active thread in group {group:?}");
        active[(ctx.edge_seq % active.len() as u64) as usize]
    })
}

/// Routes every object to a fixed thread (e.g. the main/master thread).
pub fn to_thread(t: ThreadId) -> Router {
    Box::new(move |_obj, _ctx| t)
}

/// Routes to the posting thread itself (operation chaining without
/// transfers).
pub fn local_thread() -> Router {
    Box::new(|_obj, ctx| ctx.src_thread)
}

/// Routes by a key extracted from the object: thread = `group[key % len]`
/// over the **full** group (stable, activity-independent ownership mapping).
pub fn by_key<T: 'static>(group: &str, key: impl Fn(&T) -> u64 + Send + Sync + 'static) -> Router {
    let group = group.to_string();
    Box::new(move |obj, ctx| {
        let t: &T = crate::object::downcast_ref(obj);
        let all = ctx.group_all(&group);
        assert!(!all.is_empty(), "empty thread group {group:?}");
        all[(key(t) % all.len() as u64) as usize]
    })
}

/// Routes to a thread stored inside the object itself. Applications that
/// compute ownership dynamically (e.g. after node removal) embed the target
/// in the data object and use this router.
pub fn by_target<T: 'static>(target: impl Fn(&T) -> ThreadId + Send + Sync + 'static) -> Router {
    Box::new(move |obj, _ctx| {
        let t: &T = crate::object::downcast_ref(obj);
        target(t)
    })
}

/// Routes by **relative thread index** within a group — the paper's
/// "communication patterns such as neighborhood exchanges can easily be
/// specified by using relative thread indices". The destination is the
/// group member `offset` positions from the posting thread; the group is
/// treated as a line (out-of-range posts panic — boundary threads must not
/// post past the edge).
pub fn relative(group: &str, offset: i64) -> Router {
    let group = group.to_string();
    Box::new(move |_obj, ctx| {
        let all = ctx.group_all(&group);
        let me = all
            .iter()
            .position(|&t| t == ctx.src_thread)
            .unwrap_or_else(|| panic!("posting thread not in group {group:?}"));
        let idx = me as i64 + offset;
        assert!(
            idx >= 0 && (idx as usize) < all.len(),
            "relative({offset}) from position {me} leaves group {group:?}"
        );
        all[idx as usize]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::DataObj;

    struct Tagged {
        col: u64,
        dest: ThreadId,
    }
    crate::wire_size_fixed!(Tagged, 16);

    fn setup() -> (Deployment, ActiveSet) {
        let mut d = Deployment::new();
        let ts: Vec<ThreadId> = (0..4).map(|i| d.add_thread(NodeId(i))).collect();
        d.add_group("workers", ts);
        let a = ActiveSet::all_active(d.thread_count());
        (d, a)
    }

    fn ctx<'a>(d: &'a Deployment, a: &'a ActiveSet, seq: u64) -> RouteCtx<'a> {
        RouteCtx {
            src_thread: ThreadId(0),
            edge_seq: seq,
            deployment: d,
            active: a,
        }
    }

    #[test]
    fn round_robin_cycles_active_threads() {
        let (d, a) = setup();
        let r = round_robin("workers");
        let obj: DataObj = Box::new(Tagged {
            col: 0,
            dest: ThreadId(0),
        });
        let picks: Vec<u32> = (0..8).map(|s| r(obj.as_ref(), &ctx(&d, &a, s)).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_deactivated() {
        let (d, mut a) = setup();
        a.deactivate(ThreadId(1));
        a.deactivate(ThreadId(3));
        let r = round_robin("workers");
        let obj: DataObj = Box::new(Tagged {
            col: 0,
            dest: ThreadId(0),
        });
        let picks: Vec<u32> = (0..4).map(|s| r(obj.as_ref(), &ctx(&d, &a, s)).0).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn by_key_is_stable_under_deactivation() {
        let (d, mut a) = setup();
        let r = by_key("workers", |t: &Tagged| t.col);
        let obj: DataObj = Box::new(Tagged {
            col: 6,
            dest: ThreadId(0),
        });
        let before = r(obj.as_ref(), &ctx(&d, &a, 0));
        a.deactivate(ThreadId(2));
        let after = r(obj.as_ref(), &ctx(&d, &a, 0));
        assert_eq!(before, ThreadId(2));
        assert_eq!(after, ThreadId(2), "ownership ignores activity");
    }

    #[test]
    fn by_target_reads_object_field() {
        let (d, a) = setup();
        let r = by_target(|t: &Tagged| t.dest);
        let obj: DataObj = Box::new(Tagged {
            col: 0,
            dest: ThreadId(3),
        });
        assert_eq!(r(obj.as_ref(), &ctx(&d, &a, 0)), ThreadId(3));
    }

    #[test]
    fn fixed_and_local_routers() {
        let (d, a) = setup();
        let obj: DataObj = Box::new(Tagged {
            col: 0,
            dest: ThreadId(0),
        });
        assert_eq!(
            to_thread(ThreadId(2))(obj.as_ref(), &ctx(&d, &a, 9)),
            ThreadId(2)
        );
        assert_eq!(local_thread()(obj.as_ref(), &ctx(&d, &a, 9)), ThreadId(0));
    }

    #[test]
    fn relative_routes_to_neighbors() {
        let (d, a) = setup();
        let up = relative("workers", -1);
        let down = relative("workers", 1);
        let obj: DataObj = Box::new(Tagged {
            col: 0,
            dest: ThreadId(0),
        });
        let mk = |src: u32| RouteCtx {
            src_thread: ThreadId(src),
            edge_seq: 0,
            deployment: &d,
            active: &a,
        };
        assert_eq!(down(obj.as_ref(), &mk(1)), ThreadId(2));
        assert_eq!(up(obj.as_ref(), &mk(1)), ThreadId(0));
        assert_eq!(down(obj.as_ref(), &mk(2)), ThreadId(3));
    }

    #[test]
    #[should_panic(expected = "leaves group")]
    fn relative_panics_past_the_edge() {
        let (d, a) = setup();
        let up = relative("workers", -1);
        let obj: DataObj = Box::new(Tagged {
            col: 0,
            dest: ThreadId(0),
        });
        let ctx0 = RouteCtx {
            src_thread: ThreadId(0),
            edge_seq: 0,
            deployment: &d,
            active: &a,
        };
        up(obj.as_ref(), &ctx0);
    }

    #[test]
    #[should_panic(expected = "no active thread")]
    fn round_robin_empty_group_panics() {
        let (d, mut a) = setup();
        for i in 0..4 {
            a.deactivate(ThreadId(i));
        }
        let r = round_robin("workers");
        let obj: DataObj = Box::new(Tagged {
            col: 0,
            dest: ThreadId(0),
        });
        r(obj.as_ref(), &ctx(&d, &a, 0));
    }
}
