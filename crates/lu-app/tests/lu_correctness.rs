//! End-to-end validation of the distributed LU application: running the DPS
//! flow graph through the virtual-time engine must produce exactly the same
//! factorization as the sequential blocked reference, for every flow-graph
//! variant and under thread removal.

use desim::SimDuration;
use dps_sim::{SimConfig, TimingMode};
use lu_app::{build_lu_app, measure_lu, predict_lu, DataMode, LuConfig};
use netmodel::NetParams;
use perfmodel::{LuCost, PlatformProfile};
use testbed::TestbedParams;

fn simcfg() -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(5),
        record_trace: false,
        ..SimConfig::default()
    }
}

fn real_cfg(n: usize, r: usize, nodes: u32) -> LuConfig {
    let mut cfg = LuConfig::new(n, r, nodes);
    cfg.mode = DataMode::Real;
    cfg.cost = Some(LuCost::new(PlatformProfile::modern_x86()));
    cfg
}

#[test]
fn basic_graph_factorizes_correctly() {
    let cfg = real_cfg(96, 24, 3);
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let res = run.residual.expect("real mode verifies");
    assert!(res < 1e-10, "residual {res}");
    assert!(run.factorization_time > SimDuration::ZERO);
}

#[test]
fn pipelined_graph_factorizes_correctly() {
    let mut cfg = real_cfg(96, 24, 3);
    cfg.pipelined = true;
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.residual.unwrap() < 1e-10);
}

#[test]
fn flow_control_graph_factorizes_correctly() {
    let mut cfg = real_cfg(96, 24, 3);
    cfg.pipelined = true;
    cfg.flow_control = Some(3);
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.residual.unwrap() < 1e-10);
}

#[test]
fn parallel_submul_graph_factorizes_correctly() {
    let mut cfg = real_cfg(96, 24, 3);
    cfg.parallel_mul = Some(12);
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.residual.unwrap() < 1e-10);
}

#[test]
fn all_variants_combined_factorize_correctly() {
    let mut cfg = real_cfg(96, 24, 3);
    cfg.pipelined = true;
    cfg.flow_control = Some(4);
    cfg.parallel_mul = Some(8);
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.residual.unwrap() < 1e-10);
}

#[test]
fn thread_removal_preserves_correctness() {
    // 8 workers on 4 nodes, kill 4 after iteration 1, then 2 after 2.
    let mut cfg = real_cfg(128, 16, 4);
    cfg.workers = 8;
    cfg.removal = vec![(1, 4), (2, 2)];
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.residual.unwrap() < 1e-10);
    // The allocation timeline shrank twice.
    assert!(run.report.alloc_timeline.len() >= 3);
    let final_nodes = run.report.alloc_timeline.last().unwrap().1;
    let initial_nodes = run.report.alloc_timeline.first().unwrap().1;
    assert!(final_nodes < initial_nodes);
}

#[test]
fn testbed_measurement_factorizes_correctly() {
    let cfg = real_cfg(64, 16, 2);
    let run = measure_lu(&cfg, TestbedParams::sun_cluster(), 9, &simcfg()).unwrap();
    assert!(run.residual.unwrap() < 1e-10);
}

#[test]
fn more_workers_than_nodes_factorizes_correctly() {
    // The paper's "eight column blocks on four nodes".
    let mut cfg = real_cfg(128, 16, 4);
    cfg.workers = 8;
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.residual.unwrap() < 1e-10);
}

#[test]
fn ghost_and_real_modes_predict_identical_times() {
    // PDEXEC claim: replacing data by ghosts must not change the predicted
    // schedule at all (charges and sizes are identical).
    let mut real = real_cfg(96, 24, 3);
    real.pipelined = true;
    let mut ghost = real.clone();
    ghost.mode = DataMode::Ghost;
    let mut alloc = real.clone();
    alloc.mode = DataMode::Alloc;

    let rr = predict_lu(&real, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let rg = predict_lu(&ghost, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let ra = predict_lu(&alloc, NetParams::fast_ethernet(), &simcfg()).unwrap();
    // Completion differs (Real mode appends the verification dump), but the
    // factorization itself must take identical virtual time in all modes.
    assert_eq!(rr.factorization_time, rg.factorization_time);
    assert_eq!(rr.factorization_time, ra.factorization_time);
    // ...but memory differs: ghosts hold no heap.
    assert!(rg.report.mem_peak_bytes < ra.report.mem_peak_bytes);
}

#[test]
fn iteration_marks_cover_every_iteration() {
    let mut cfg = LuConfig::new(96, 16, 3); // K = 6
    cfg.mode = DataMode::Ghost;
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let iters = lu_app::iteration_times(&run.report);
    assert_eq!(iters.len(), 6);
    for (label, span, eff) in &iters {
        assert!(span.as_nanos() > 0, "{label} has zero span");
        assert!((0.0..=1.0).contains(eff), "{label} efficiency {eff}");
    }
    // Later iterations are cheaper (shrinking trailing matrix).
    let first = iters.first().unwrap().1;
    let last = iters.last().unwrap().1;
    assert!(
        first > last,
        "iteration times must shrink: {first} vs {last}"
    );
}

#[test]
fn deterministic_predictions() {
    let mut cfg = LuConfig::new(192, 24, 4);
    cfg.mode = DataMode::Ghost;
    cfg.pipelined = true;
    cfg.flow_control = Some(8);
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    let a = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let b = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert_eq!(a.report.completion, b.report.completion);
    assert_eq!(a.report.steps, b.report.steps);
}

#[test]
fn native_runner_executes_the_same_application() {
    let cfg = real_cfg(64, 16, 2);
    let (app, sh) = build_lu_app(cfg.clone());
    let r = testbed::run_native(&app, std::time::Duration::from_secs(120));
    assert!(r.terminated, "native LU run did not terminate");
    let out = sh.result.lock().unwrap().take().expect("output");
    let a = linalg::Matrix::random(cfg.n, cfg.n, cfg.seed);
    let f = linalg::blocked::LuFactors {
        lu: out.lu,
        pivots: out.pivots,
    };
    assert!(linalg::lu_residual(&a, &f) < 1e-10);
}
