//! Per-iteration request generators, running on the panel owner's thread:
//!
//! * [`TrsmGenOp`] — the split side of the paper's stream (f): issues the
//!   triangular-solve request for column `j` when the coordinator says the
//!   column is ready, carrying `L11` and the pivots from the local panel.
//! * [`MulGenOp`] — the paper's stream (c): collects solve notifications
//!   (`T12` blocks), pairs them with the locally available `L21` blocks,
//!   and streams out the block-multiplication requests. In the basic flow
//!   graph it behaves as a merge/split barrier (waits for every `T12` of
//!   the iteration); pipelined, it streams per column. Its posts are the
//!   flow-controlled ones.

use std::collections::HashMap;
use std::sync::Arc;

use dps::{downcast, DataObj, OpCtx, Operation, ThreadId};

use crate::ops::LuShared;
use crate::payload::{MulIn, MulReq, Payload, Pivots, TrsmGo, TrsmReq};

/// State of one iteration inside [`TrsmGenOp`].
#[derive(Clone)]
struct TrsmState {
    l11: Payload,
    pivots: Pivots,
    remaining: usize,
}

/// Stream issuing triangular-solve requests (paper op (f), split side).
#[derive(Clone)]
pub struct TrsmGenOp {
    sh: Arc<LuShared>,
    me: ThreadId,
    setups: HashMap<usize, TrsmState>,
    /// `TrsmGo`s that arrived before their panel results (cannot happen
    /// with a correct coordinator, but buffering keeps the op total).
    pending: Vec<TrsmGo>,
}

impl TrsmGenOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>, me: ThreadId) -> TrsmGenOp {
        TrsmGenOp {
            sh,
            me,
            setups: HashMap::new(),
            pending: Vec::new(),
        }
    }

    fn issue(&mut self, go: TrsmGo, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let st = self.setups.get_mut(&go.k).expect("setup present");
        let req = TrsmReq {
            k: go.k,
            j: go.j,
            dest: go.owner,
            hub: self.me,
            l11: st.l11.clone(),
            pivots: st.pivots.clone(),
        };
        sh.charge_msg_prep(ctx, st.l11.wire() + st.pivots.wire());
        st.remaining -= 1;
        if st.remaining == 0 {
            self.setups.remove(&go.k);
        }
        ctx.post(sh.ids.worker, Box::new(req));
    }
}

impl Operation for TrsmGenOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let any = obj.into_any();
        let any = match any.downcast::<crate::payload::TrsmSetup>() {
            Ok(setup) => {
                let setup = *setup;
                let remaining = self.sh.kb - 1 - setup.k;
                self.setups.insert(
                    setup.k,
                    TrsmState {
                        l11: setup.l11,
                        pivots: setup.pivots,
                        remaining,
                    },
                );
                let ready: Vec<TrsmGo> = {
                    let k = setup.k;
                    let (r, rest): (Vec<_>, Vec<_>) =
                        self.pending.drain(..).partition(|g| g.k == k);
                    self.pending = rest;
                    r
                };
                for go in ready {
                    self.issue(go, ctx);
                }
                return;
            }
            Err(a) => a,
        };
        let go: TrsmGo = match any.downcast::<TrsmGo>() {
            Ok(g) => *g,
            Err(_) => panic!("trsmgen received unexpected data object"),
        };
        if self.setups.contains_key(&go.k) {
            self.issue(go, ctx);
        } else {
            self.pending.push(go);
        }
    }
}

/// State of one iteration inside [`MulGenOp`].
#[derive(Clone, Default)]
struct MulState {
    l21: Option<Vec<Payload>>,
    /// Buffered (j, owner, t12) tuples (basic mode holds all of them until
    /// the iteration's last solve; pipelined mode only those that arrived
    /// before the panel results).
    t12s: Vec<(usize, ThreadId, Payload)>,
    arrived: usize,
    emitted_cols: usize,
}

/// Stream generating multiplication requests (paper op (c)).
#[derive(Clone)]
pub struct MulGenOp {
    sh: Arc<LuShared>,
    states: HashMap<usize, MulState>,
}

impl MulGenOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>, _me: ThreadId) -> MulGenOp {
        MulGenOp {
            sh,
            states: HashMap::new(),
        }
    }

    /// Emits the `kb-1-k` multiplication requests of column `j`.
    fn emit_column(
        sh: &Arc<LuShared>,
        state: &mut MulState,
        k: usize,
        j: usize,
        owner: ThreadId,
        t12: &Payload,
        ctx: &mut dyn OpCtx,
    ) {
        let kb = sh.kb;
        let l21 = state.l21.as_ref().expect("L21 present");
        let dest_op = if sh.cfg.parallel_mul.is_some() {
            sh.ids.pmsplit
        } else {
            sh.ids.mult
        };
        for i in k + 1..kb {
            let req = MulReq {
                k,
                i,
                j,
                owner,
                a: l21[i - k - 1].clone(),
                b: t12.clone(),
            };
            sh.charge_msg_prep(ctx, req.a.wire() + req.b.wire());
            ctx.post(dest_op, Box::new(req));
        }
        state.emitted_cols += 1;
    }
}

impl Operation for MulGenOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let kb = sh.kb;
        let m: MulIn = downcast(obj);
        match m {
            MulIn::L21 { k, blocks, .. } => {
                let state = self.states.entry(k).or_default();
                state.l21 = Some(blocks);
                // Pipelined: flush whatever solves already arrived. Basic:
                // flush only if the iteration's solves are all in.
                let flush = sh.cfg.pipelined || state.arrived == kb - 1 - k;
                if flush {
                    let buffered = std::mem::take(&mut state.t12s);
                    for (j, owner, t12) in &buffered {
                        Self::emit_column(&sh, state, k, *j, *owner, t12, ctx);
                    }
                }
            }
            MulIn::TrsmDone {
                k, j, owner, t12, ..
            } => {
                let state = self.states.entry(k).or_default();
                state.arrived += 1;
                let streaming = sh.cfg.pipelined;
                if streaming && state.l21.is_some() {
                    Self::emit_column(&sh, state, k, j, owner, &t12, ctx);
                } else if !streaming && state.arrived == kb - 1 - k && state.l21.is_some() {
                    // Basic graph: barrier reached — emit every column now.
                    state.t12s.push((j, owner, t12));
                    let buffered = std::mem::take(&mut state.t12s);
                    for (jj, own, tt) in &buffered {
                        Self::emit_column(&sh, state, k, *jj, *own, tt, ctx);
                    }
                } else {
                    state.t12s.push((j, owner, t12));
                }
            }
        }
        // Iteration state drops once every column's requests went out.
        self.states.retain(|&k, s| s.emitted_cols < kb - 1 - k);
    }
}
