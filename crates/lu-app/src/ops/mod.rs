//! Operation implementations of the LU flow graph.
//!
//! Operation → paper mapping (Figures 5 and 7):
//!
//! | module      | op         | paper |
//! |-------------|------------|-------|
//! | [`init`]    | `init`     | initial matrix distribution (split) |
//! | [`worker`]  | `worker`   | (a) panel LU, (b) trsm + row flip, (e) subtraction, (g) row flipping of previous columns, column storage & migration |
//! | [`hub`]     | `trsmgen`  | (f)'s split side: streams triangular-solve requests |
//! | [`hub`]     | `mulgen`   | (c): collects solve notifications, streams multiplication requests (flow-controlled) |
//! | [`mult`]    | `mult`     | (d): block multiplication |
//! | [`pm`]      | `pmsplit`/`pmworker`/`pmmerge` | Figure 7 (a)–(f): parallel sub-block multiplication |
//! | [`coord`]   | `coord`    | (f)'s merge side + (h): collects notifications, triggers panels/flips, barriers (basic graph), iteration marks, thread removal |
//! | [`collect`] | `collect`  | verification dump (not in the paper's graph; Real mode only) |

pub mod collect;
pub mod coord;
pub mod hub;
pub mod init;
pub mod mult;
pub mod pm;
pub mod worker;

use std::sync::Mutex;

use desim::SimDuration;
use dps::{OpCtx, OpId, ThreadId};
use linalg::Matrix;
use perfmodel::LuCost;

use crate::config::{DataMode, LuConfig};
use crate::payload::{LuOutput, Payload};

/// Operation ids of the built flow graph, captured by every behaviour.
#[derive(Clone, Copy, Debug)]
pub struct OpIds {
    /// Initial matrix distribution split.
    pub init: OpId,
    /// Column-block owner (panel/trsm/sub/flip/storage).
    pub worker: OpId,
    /// Triangular-solve request generator (stream on the panel owner).
    pub trsmgen: OpId,
    /// Multiplication request generator (flow-controlled stream).
    pub mulgen: OpId,
    /// Block multiplication leaf.
    pub mult: OpId,
    /// PM sub-graph: distributor of sub-blocks.
    pub pmsplit: OpId,
    /// PM sub-graph: sub-block store + multiplier.
    pub pmworker: OpId,
    /// PM sub-graph: product assembler.
    pub pmmerge: OpId,
    /// Coordinator stream on the main thread.
    pub coord: OpId,
    /// Verification collector (Real mode).
    pub collect: OpId,
}

/// Configuration and cross-operation plumbing shared by all behaviours.
pub struct LuShared {
    /// The run's configuration.
    pub cfg: LuConfig,
    /// Number of column blocks `K`.
    pub kb: usize,
    /// Flow-graph operation ids.
    pub ids: OpIds,
    /// Where the coordinator deposits the global pivot sequence for the
    /// collector (Real mode).
    pub pending_pivots: Mutex<Vec<usize>>,
    /// Final factorization output (Real mode).
    pub result: Mutex<Option<LuOutput>>,
}

impl LuShared {
    /// The PDEXEC kernel cost model, if configured.
    pub fn cost(&self) -> Option<&LuCost> {
        self.cfg.cost.as_ref()
    }

    /// Charges a kernel duration when a cost model is configured (PDEXEC);
    /// without one, direct execution measures the step instead.
    pub fn charge(&self, ctx: &mut dyn OpCtx, f: impl FnOnce(&LuCost) -> SimDuration) {
        if let Some(cost) = self.cost() {
            ctx.charge(f(cost));
        }
    }

    /// Charges the serialization/copy cost of preparing a `bytes`-sized
    /// message.
    pub fn charge_msg_prep(&self, ctx: &mut dyn OpCtx, bytes: u64) {
        if let Some(cost) = self.cost() {
            let d = SimDuration::from_secs_f64(bytes as f64 / cost.profile().mem_bytes_per_sec);
            ctx.charge(d);
        }
    }

    /// Builds a block payload in the configured data mode; `real` is only
    /// invoked in `Real` mode.
    pub fn make_payload(&self, rows: usize, cols: usize, real: impl FnOnce() -> Matrix) -> Payload {
        match self.cfg.mode {
            DataMode::Real => Payload::Real(real()),
            DataMode::Alloc => Payload::alloc(rows, cols),
            DataMode::Ghost => Payload::Ghost { rows, cols },
        }
    }

    /// Whether kernels actually compute.
    pub fn compute(&self) -> bool {
        self.cfg.mode == DataMode::Real
    }

    /// Whether behaviour state may be deep-copied for simulator
    /// checkpoint/fork. `Real` mode opts out: forks would share the
    /// `pending_pivots`/`result` channels through the `Arc` and corrupt
    /// each other's output.
    pub fn forkable(&self) -> bool {
        self.cfg.mode != DataMode::Real
    }
}

/// Expands, inside an `impl Operation` block of a `Clone` LU behaviour
/// holding an `sh: Arc<LuShared>` field, to the simulator checkpoint/fork
/// hooks: deep copy via `Clone` (gated on [`LuShared::forkable`]) and
/// `Any` views for pause predicates and divergence rewrites.
macro_rules! impl_lu_fork {
    () => {
        fn fork_op(&self) -> Option<Box<dyn Operation>> {
            self.sh
                .forkable()
                .then(|| Box::new(self.clone()) as Box<dyn Operation>)
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    };
}
pub(crate) use impl_lu_fork;

/// Initial owner of column block `j` among `workers`.
pub fn initial_owner(workers: &[ThreadId], j: usize) -> ThreadId {
    workers[j % workers.len()]
}
