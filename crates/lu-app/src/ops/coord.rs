//! The coordinator: merge side of the paper's stream (f) plus the
//! termination merge (h).
//!
//! It collects every notification (column storage, panel pivots,
//! subtraction completions, row-flip completions, migration acks) and
//! drives the factorization: triggering panels, triangular solves and row
//! flips, enforcing iteration barriers in the basic flow graph, streaming
//! in the pipelined one, recording per-iteration marks for the
//! dynamic-efficiency analysis, returning flow-control credits, and
//! executing the thread-removal plan (evict → migrate → deactivate).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use dps::{downcast, DataObj, OpCtx, Operation, ThreadId};

use crate::config::DataMode;
use crate::ops::{initial_owner, LuShared};
use crate::payload::{CoordMsg, Pivots, TrsmGo, WorkerReq, WorkerReqBody};

/// The coordinator state machine (see module docs).
#[derive(Clone)]
pub struct CoordOp {
    sh: Arc<LuShared>,
    /// Current owner of each column block.
    owner: Vec<ThreadId>,
    /// Coordinator's view of the active workers (matches the engine's
    /// active set; updated at removals).
    active: Vec<ThreadId>,
    stored: usize,
    started: bool,

    /// Pivot sequences per panel (also the PanelPivots-received marker).
    pivots: HashMap<usize, Pivots>,
    /// Remaining subtractions per (k, j).
    subs_left: HashMap<(usize, usize), usize>,
    /// Columns that completed iteration `k` (pipelined gating).
    completed: BTreeSet<(usize, usize)>,

    // Basic-graph barrier bookkeeping for the current iteration.
    iter_cols_left: usize,
    iter_flips_left: usize,
    cur_k: usize,

    // Global progress for termination.
    panels_left: usize,
    total_subs_left: usize,
    total_flips_left: usize,

    // Removal plan execution.
    removal_queue: Vec<(usize, u32)>,
    migrations_left: usize,
    to_deactivate: Vec<ThreadId>,
    /// Set while a removal's migrations are in flight; the pending next
    /// iteration starts once they finish.
    pending_panel: Option<usize>,

    dumped: bool,
    finished: bool,
}

impl CoordOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>) -> CoordOp {
        let kb = sh.kb;
        let total_subs: usize = (0..kb).map(|k| (kb - 1 - k) * (kb - 1 - k)).sum();
        let total_flips = kb * (kb - 1) / 2;
        let removal_queue = sh.cfg.removal.clone();
        CoordOp {
            sh,
            owner: Vec::new(),
            active: Vec::new(),
            stored: 0,
            started: false,
            pivots: HashMap::new(),
            subs_left: HashMap::new(),
            completed: BTreeSet::new(),
            iter_cols_left: 0,
            iter_flips_left: 0,
            cur_k: 0,
            panels_left: kb,
            total_subs_left: total_subs,
            total_flips_left: total_flips,
            removal_queue,
            migrations_left: 0,
            to_deactivate: Vec::new(),
            pending_panel: None,
            dumped: false,
            finished: false,
        }
    }

    fn post_panel(&mut self, k: usize, ctx: &mut dyn OpCtx) {
        self.cur_k = k;
        let kb = self.sh.kb;
        self.iter_cols_left = kb - 1 - k;
        self.iter_flips_left = k;
        for j in k + 1..kb {
            self.subs_left.insert((k, j), kb - 1 - k);
        }
        ctx.post(
            self.sh.ids.worker,
            Box::new(WorkerReq {
                dest: self.owner[k],
                body: WorkerReqBody::Panel { k },
            }),
        );
    }

    fn post_trsm_go(&self, k: usize, j: usize, ctx: &mut dyn OpCtx) {
        ctx.post(
            self.sh.ids.trsmgen,
            Box::new(TrsmGo {
                k,
                j,
                hub: self.owner[k],
                owner: self.owner[j],
            }),
        );
    }

    fn on_panel_pivots(&mut self, k: usize, pivots: Pivots, ctx: &mut dyn OpCtx) {
        self.panels_left -= 1;
        let kb = self.sh.kb;
        // Row flipping of previous columns (op (g)).
        for j in 0..k {
            ctx.post(
                self.sh.ids.worker,
                Box::new(WorkerReq {
                    dest: self.owner[j],
                    body: WorkerReqBody::Flip {
                        k,
                        j,
                        pivots: pivots.clone(),
                    },
                }),
            );
        }
        // Triangular solves for the columns right of the panel.
        if self.sh.cfg.pipelined {
            for j in k + 1..kb {
                if self.eligible(k, j) {
                    self.post_trsm_go(k, j, ctx);
                }
            }
        } else {
            // Basic graph: the barrier guarantees every column is ready.
            for j in k + 1..kb {
                self.post_trsm_go(k, j, ctx);
            }
        }
        self.pivots.insert(k, pivots);
        self.maybe_finish(ctx);
    }

    /// Whether column `j` may receive iteration `k`'s solve request:
    /// it must have completed iteration `k-1`.
    fn eligible(&self, k: usize, j: usize) -> bool {
        k == 0 || self.completed.contains(&(k - 1, j))
    }

    fn on_sub_done(&mut self, k: usize, j: usize, ctx: &mut dyn OpCtx) {
        self.total_subs_left -= 1;
        if self.sh.cfg.flow_control.is_some() {
            ctx.fc_release(self.sh.ids.mulgen);
        }
        let left = self.subs_left.get_mut(&(k, j)).expect("unexpected SubDone");
        *left -= 1;
        if *left > 0 {
            self.maybe_finish(ctx);
            return;
        }
        self.subs_left.remove(&(k, j));
        self.completed.insert((k, j));

        if self.sh.cfg.pipelined {
            let next = k + 1;
            if j == next {
                // Paper: "perform next level LU factorization as soon as
                // the first column block is complete".
                ctx.mark(&format!("iter:{}", k + 1));
                self.post_panel(next, ctx);
            } else if self.pivots.contains_key(&next) {
                self.post_trsm_go(next, j, ctx);
            }
        } else {
            self.iter_cols_left -= 1;
            self.check_barrier(ctx);
        }
        self.maybe_finish(ctx);
    }

    fn on_flip_done(&mut self, k: usize, ctx: &mut dyn OpCtx) {
        self.total_flips_left -= 1;
        if !self.sh.cfg.pipelined && k == self.cur_k {
            self.iter_flips_left -= 1;
            self.check_barrier(ctx);
        }
        self.maybe_finish(ctx);
    }

    /// Basic graph: iteration `cur_k` finishes when all its columns and
    /// flips are done; then run the removal plan and start the next panel.
    fn check_barrier(&mut self, ctx: &mut dyn OpCtx) {
        if self.iter_cols_left > 0 || self.iter_flips_left > 0 {
            return;
        }
        let k = self.cur_k;
        let kb = self.sh.kb;
        if k + 1 >= kb {
            return; // the final panel's completion is handled by maybe_finish
        }
        ctx.mark(&format!("iter:{}", k + 1));
        self.iter_cols_left = usize::MAX; // arm against double entry
        self.iter_flips_left = usize::MAX;

        // Thread removal after iteration k+1 (1-based)?
        if let Some(&(after, count)) = self.removal_queue.first() {
            if after == k + 1 {
                self.removal_queue.remove(0);
                self.begin_removal(count, k + 1, ctx);
                return;
            }
        }
        self.post_panel(k + 1, ctx);
    }

    /// Deallocates `count` workers: columns they own migrate to the
    /// remaining threads first; the panels resume once every migration is
    /// acknowledged.
    fn begin_removal(&mut self, count: u32, next_k: usize, ctx: &mut dyn OpCtx) {
        let keep = self.active.len() - count as usize;
        let killed: Vec<ThreadId> = self.active.split_off(keep);
        self.to_deactivate = killed.clone();
        self.pending_panel = Some(next_k);
        // Recompute ownership over the survivors; migrate displaced columns.
        let kb = self.sh.kb;
        self.migrations_left = 0;
        for j in 0..kb {
            if killed.contains(&self.owner[j]) {
                let new_owner = self.active[j % self.active.len()];
                let old = self.owner[j];
                self.owner[j] = new_owner;
                self.migrations_left += 1;
                ctx.post(
                    self.sh.ids.worker,
                    Box::new(WorkerReq {
                        dest: old,
                        body: WorkerReqBody::Evict { j, to: new_owner },
                    }),
                );
            }
        }
        if self.migrations_left == 0 {
            self.finish_removal(ctx);
        }
    }

    fn finish_removal(&mut self, ctx: &mut dyn OpCtx) {
        for t in std::mem::take(&mut self.to_deactivate) {
            ctx.deactivate_thread(t);
        }
        if let Some(k) = self.pending_panel.take() {
            self.post_panel(k, ctx);
        }
    }

    fn on_migrate_ack(&mut self, ctx: &mut dyn OpCtx) {
        self.migrations_left -= 1;
        if self.migrations_left == 0 {
            self.finish_removal(ctx);
        }
    }

    // ----- checkpoint/fork support ---------------------------------------

    /// Iteration (panel index) whose barrier the coordinator is currently
    /// collecting.
    pub fn current_iteration(&self) -> usize {
        self.cur_k
    }

    /// The not-yet-executed tail of the thread-removal plan.
    pub fn removal_plan(&self) -> &[(usize, u32)] {
        &self.removal_queue
    }

    /// Replaces the not-yet-executed removal plan — the divergence rewrite
    /// a forked checkpoint applies before continuing. Entries whose
    /// iteration already passed are dropped (they can no longer fire).
    pub fn set_removal_plan(&mut self, plan: Vec<(usize, u32)>) {
        self.removal_queue = plan;
        if self.started {
            self.removal_queue.retain(|&(after, _)| after > self.cur_k);
        }
    }

    /// Whether consuming `msg` next would close iteration `cur_k`'s
    /// barrier — i.e. run the atomic step that records `iter:{cur_k+1}`
    /// and consults the removal plan. Pausing a checkpoint right before
    /// this step lets a fork rewrite the plan in time for the decision.
    /// Always `false` in the pipelined graph, which has no barrier.
    pub fn barrier_closing(&self, msg: &CoordMsg) -> bool {
        if self.sh.cfg.pipelined || !self.started || self.migrations_left > 0 {
            return false;
        }
        match *msg {
            CoordMsg::SubDone { k, j } => {
                k == self.cur_k
                    && self.iter_flips_left == 0
                    && self.iter_cols_left == 1
                    && self.subs_left.get(&(k, j)) == Some(&1)
            }
            CoordMsg::FlipDone { k, .. } => {
                k == self.cur_k && self.iter_cols_left == 0 && self.iter_flips_left == 1
            }
            _ => false,
        }
    }

    /// Checks global completion: every panel factored, every subtraction
    /// and flip applied, no migrations in flight.
    fn maybe_finish(&mut self, ctx: &mut dyn OpCtx) {
        if self.finished
            || self.panels_left > 0
            || self.total_subs_left > 0
            || self.total_flips_left > 0
            || self.migrations_left > 0
            || self.stored < self.sh.kb
        {
            return;
        }
        self.finished = true;
        ctx.mark(&format!("iter:{}", self.sh.kb));
        if self.sh.cfg.mode == DataMode::Real && !self.dumped {
            self.dumped = true;
            // Deposit the globalized pivot sequence for the collector.
            let mut glob = Vec::with_capacity(self.sh.cfg.n);
            for k in 0..self.sh.kb {
                let p = self.pivots.get(&k).expect("pivots recorded");
                for &local in &p.0 {
                    glob.push(k * self.sh.cfg.r + local);
                }
            }
            *self.sh.pending_pivots.lock().expect("pivot lock") = glob;
            for j in 0..self.sh.kb {
                ctx.post(
                    self.sh.ids.worker,
                    Box::new(WorkerReq {
                        dest: self.owner[j],
                        body: WorkerReqBody::Dump { j },
                    }),
                );
            }
        } else {
            ctx.terminate();
        }
    }
}

impl Operation for CoordOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let m: CoordMsg = downcast(obj);
        match m {
            CoordMsg::ColStored { .. } => {
                self.stored += 1;
                if self.stored == self.sh.kb && !self.started {
                    self.started = true;
                    // Ownership snapshot at start.
                    self.active = ctx.active_threads("workers");
                    let kb = self.sh.kb;
                    self.owner = (0..kb).map(|j| initial_owner(&self.active, j)).collect();
                    ctx.mark("dist");
                    self.post_panel(0, ctx);
                }
            }
            CoordMsg::PanelPivots { k, pivots } => self.on_panel_pivots(k, pivots, ctx),
            CoordMsg::SubDone { k, j } => self.on_sub_done(k, j, ctx),
            CoordMsg::FlipDone { k, .. } => self.on_flip_done(k, ctx),
            CoordMsg::MigrateAck { .. } => self.on_migrate_ack(ctx),
        }
    }
}
