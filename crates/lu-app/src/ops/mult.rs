//! The block multiplication leaf (paper op (d)): computes `L21(i) · T12(j)`
//! and sends the product to the subtraction at column `j`'s owner.

use std::sync::Arc;

use dps::{downcast, DataObj, OpCtx, Operation};

use crate::ops::LuShared;
use crate::payload::{MulReq, Payload, SubReq};

/// The block multiplication leaf (see module docs).
#[derive(Clone)]
pub struct MultOp {
    sh: Arc<LuShared>,
}

impl MultOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>) -> MultOp {
        MultOp { sh }
    }
}

impl Operation for MultOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let r = sh.cfg.r;
        let m: MulReq = downcast(obj);
        let prod = if sh.compute() {
            Payload::Real(m.a.matrix().matmul(m.b.matrix()))
        } else {
            sh.make_payload(r, r, || unreachable!())
        };
        sh.charge(ctx, |c| c.gemm_block(r));
        sh.charge_msg_prep(ctx, prod.wire());
        ctx.post(
            sh.ids.worker,
            Box::new(SubReq {
                k: m.k,
                i: m.i,
                j: m.j,
                dest: m.owner,
                prod,
            }),
        );
    }
}
