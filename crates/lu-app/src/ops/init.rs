//! The init split: generates/declares the matrix and distributes its column
//! blocks onto the worker threads.

use std::sync::Arc;

use dps::{downcast, DataObj, OpCtx, Operation};
use linalg::Matrix;

use crate::ops::{initial_owner, LuShared};
use crate::payload::{ColumnData, Start};

/// The initial matrix distribution split (see module docs).
#[derive(Clone)]
pub struct InitOp {
    sh: Arc<LuShared>,
}

impl InitOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>) -> InitOp {
        InitOp { sh }
    }
}

impl Operation for InitOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let _: Start = downcast(obj);
        let sh = &self.sh;
        let (n, r, kb) = (sh.cfg.n, sh.cfg.r, sh.kb);
        let workers = ctx.all_threads("workers");

        // The full input matrix exists only here, only in Real mode, and
        // only for the duration of the distribution.
        let full = if sh.compute() {
            Some(Matrix::random(n, n, sh.cfg.seed))
        } else {
            None
        };
        for j in 0..kb {
            let col = sh.make_payload(n, r, || {
                full.as_ref().expect("real mode").block(0, j * r, n, r)
            });
            sh.charge_msg_prep(ctx, col.wire());
            ctx.post(
                sh.ids.worker,
                Box::new(ColumnData {
                    j,
                    dest: initial_owner(&workers, j),
                    migration: false,
                    col,
                }),
            );
        }
    }
}
