//! Parallel sub-block multiplication (the paper's Figure 7).
//!
//! Each `r × r` block multiplication `L21(i) · T12(j)` is decomposed into
//! `q = r/s` line blocks (`s × r`, from the first matrix) and `q` column
//! blocks (`r × s`, from the second):
//!
//! * [`PmSplitOp`] (a, c, d): stores the first matrix, distributes the
//!   column blocks, collects storage notifications, then sends the line
//!   blocks to the threads holding the column blocks;
//! * [`PmWorkerOp`] (b, e): stores column blocks and multiplies arriving
//!   line blocks with them, producing `s × s` pieces;
//! * [`PmMergeOp`] (f): collects the `q²` pieces, assembles the `r × r`
//!   product on column `j`'s owner and hands it to the subtraction.

use std::collections::HashMap;
use std::sync::Arc;

use dps::{downcast, DataObj, OpCtx, Operation, ThreadId};
use linalg::Matrix;

use crate::ops::LuShared;
use crate::payload::{MulKey, MulReq, Payload, PmColAck, PmPiece, PmWork, SubReq};

#[derive(Clone)]
struct SplitState {
    a: Payload,
    storers: Vec<ThreadId>,
    acks: usize,
    owner: ThreadId,
}

/// PM (a)(c)(d): stores the first matrix, distributes column sub-blocks,
/// collects storage acks, sends line blocks.
#[derive(Clone)]
pub struct PmSplitOp {
    sh: Arc<LuShared>,
    me: ThreadId,
    states: HashMap<MulKey, SplitState>,
}

impl PmSplitOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>, me: ThreadId) -> PmSplitOp {
        PmSplitOp {
            sh,
            me,
            states: HashMap::new(),
        }
    }

    fn q(&self) -> usize {
        self.sh.cfg.r / self.sh.cfg.parallel_mul.expect("PM enabled")
    }

    fn on_req(&mut self, m: MulReq, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let s = sh.cfg.parallel_mul.expect("PM enabled");
        let r = sh.cfg.r;
        let q = self.q();
        let key = MulKey {
            k: m.k,
            i: m.i,
            j: m.j,
        };
        // Deterministic storer choice spread by the multiplication indices.
        let act = ctx.active_threads("workers");
        let storers: Vec<ThreadId> = (0..q).map(|c| act[(m.i + m.j + c) % act.len()]).collect();
        for (c, &dest) in storers.iter().enumerate() {
            let data = if sh.compute() {
                Payload::Real(m.b.matrix().block(0, c * s, r, s))
            } else {
                sh.make_payload(r, s, || unreachable!())
            };
            sh.charge_msg_prep(ctx, data.wire());
            ctx.post(
                sh.ids.pmworker,
                Box::new(PmWork::Col {
                    key,
                    c,
                    q,
                    dest,
                    splitter: self.me,
                    owner: m.owner,
                    data,
                }),
            );
        }
        self.states.insert(
            key,
            SplitState {
                a: m.a,
                storers,
                acks: 0,
                owner: m.owner,
            },
        );
    }

    fn on_ack(&mut self, ack: PmColAck, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let s = sh.cfg.parallel_mul.expect("PM enabled");
        let r = sh.cfg.r;
        let q = self.q();
        let st = self.states.get_mut(&ack.key).expect("split state present");
        st.acks += 1;
        if st.acks < q {
            return;
        }
        let st = self.states.remove(&ack.key).expect("just seen");
        for l in 0..q {
            let data = if sh.compute() {
                Payload::Real(st.a.matrix().block(l * s, 0, s, r))
            } else {
                sh.make_payload(s, r, || unreachable!())
            };
            for (c, &dest) in st.storers.iter().enumerate() {
                let line = data.clone();
                sh.charge_msg_prep(ctx, line.wire());
                ctx.post(
                    sh.ids.pmworker,
                    Box::new(PmWork::Line {
                        key: ack.key,
                        l,
                        c,
                        q,
                        dest,
                        merge_at: st.owner,
                        data: line,
                    }),
                );
            }
        }
    }
}

impl Operation for PmSplitOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let any = obj.into_any();
        let any = match any.downcast::<MulReq>() {
            Ok(m) => return self.on_req(*m, ctx),
            Err(a) => a,
        };
        match any.downcast::<PmColAck>() {
            Ok(a) => self.on_ack(*a, ctx),
            Err(_) => panic!("pmsplit received unexpected data object"),
        }
    }
}

/// PM (b)(e): stores column sub-blocks and multiplies line blocks with them.
#[derive(Clone)]
pub struct PmWorkerOp {
    sh: Arc<LuShared>,
    me: ThreadId,
    stored: HashMap<(MulKey, usize), (Payload, usize)>, // (col block, lines served)
}

impl PmWorkerOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>, me: ThreadId) -> PmWorkerOp {
        PmWorkerOp {
            sh,
            me,
            stored: HashMap::new(),
        }
    }
}

impl Operation for PmWorkerOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let m: PmWork = downcast(obj);
        match m {
            PmWork::Col {
                key,
                c,
                splitter,
                data,
                ..
            } => {
                ctx.account_state(data.heap() as i64);
                self.stored.insert((key, c), (data, 0));
                ctx.post(
                    sh.ids.pmsplit,
                    Box::new(PmColAck {
                        key,
                        c,
                        storer: self.me,
                        dest: splitter,
                    }),
                );
            }
            PmWork::Line {
                key,
                l,
                c,
                q,
                merge_at,
                data,
                ..
            } => {
                let s = sh.cfg.parallel_mul.expect("PM enabled");
                let r = sh.cfg.r;
                let piece = {
                    let (col, served) = self.stored.get_mut(&(key, c)).expect("column stored");
                    let piece = if sh.compute() {
                        Payload::Real(data.matrix().matmul(col.matrix()))
                    } else {
                        sh.make_payload(s, s, || unreachable!())
                    };
                    *served += 1;
                    if *served == q {
                        let (gone, _) = self.stored.remove(&(key, c)).expect("present");
                        ctx.account_state(-(gone.heap() as i64));
                    }
                    piece
                };
                sh.charge(ctx, |cst| cst.gemm(s, s, r));
                sh.charge_msg_prep(ctx, piece.wire());
                ctx.post(
                    sh.ids.pmmerge,
                    Box::new(PmPiece {
                        key,
                        l,
                        c,
                        q,
                        owner: merge_at,
                        merge_at,
                        data: piece,
                    }),
                );
            }
        }
    }
}

/// PM (f): assembles the r x r product from the s x s pieces.
#[derive(Clone)]
pub struct PmMergeOp {
    sh: Arc<LuShared>,
    pieces: HashMap<MulKey, Vec<PmPiece>>,
}

impl PmMergeOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>) -> PmMergeOp {
        PmMergeOp {
            sh,
            pieces: HashMap::new(),
        }
    }
}

impl Operation for PmMergeOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let r = sh.cfg.r;
        let s = sh.cfg.parallel_mul.expect("PM enabled");
        let p: PmPiece = downcast(obj);
        let key = p.key;
        let q = p.q;
        let owner = p.owner;
        let entry = self.pieces.entry(key).or_default();
        entry.push(p);
        if entry.len() < q * q {
            return;
        }
        let pieces = self.pieces.remove(&key).expect("just filled");
        let prod = if sh.compute() {
            let mut prod = Matrix::zeros(r, r);
            for piece in &pieces {
                prod.set_block(piece.l * s, piece.c * s, piece.data.matrix());
            }
            Payload::Real(prod)
        } else {
            sh.make_payload(r, r, || unreachable!())
        };
        // Assembly cost: one pass over the r × r result.
        sh.charge_msg_prep(ctx, prod.wire());
        ctx.post(
            sh.ids.worker,
            Box::new(SubReq {
                k: key.k,
                i: key.i,
                j: key.j,
                dest: owner,
                prod,
            }),
        );
    }
}
