//! The verification collector (Real mode): assembles the dumped column
//! blocks into the full compact LU matrix and deposits it, together with
//! the global pivot sequence, into the shared result slot.

use std::sync::Arc;

use dps::{downcast, DataObj, OpCtx, Operation};
use linalg::Matrix;

use crate::ops::LuShared;
use crate::payload::{ColumnOut, LuOutput};

/// Verification collector: assembles dumped columns (see module docs).
#[derive(Clone)]
pub struct CollectOp {
    sh: Arc<LuShared>,
    acc: Option<Matrix>,
    got: usize,
}

impl CollectOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>) -> CollectOp {
        CollectOp {
            sh,
            acc: None,
            got: 0,
        }
    }
}

impl Operation for CollectOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let (n, r) = (sh.cfg.n, sh.cfg.r);
        let m: ColumnOut = downcast(obj);
        let acc = self.acc.get_or_insert_with(|| Matrix::zeros(n, n));
        acc.set_block(0, m.j * r, m.col.matrix());
        self.got += 1;
        if self.got == sh.kb {
            let lu = self.acc.take().expect("accumulator present");
            let pivots = std::mem::take(&mut *sh.pending_pivots.lock().expect("pivot lock"));
            *sh.result.lock().expect("result lock") = Some(LuOutput { lu, pivots });
            ctx.terminate();
        }
    }
}
