//! The worker operation: owns column blocks and performs every kernel that
//! touches them — panel LU (a), row flipping + triangular solve (b),
//! subtraction (e), row flipping of previous columns (g), plus storage,
//! eviction and migration for dynamic thread removal.

use std::collections::HashMap;
use std::sync::Arc;

use dps::{DataObj, OpCtx, Operation, ThreadId};
use linalg::{apply_row_swaps, panel_lu, trsm_lower_unit};

use crate::ops::LuShared;
use crate::payload::{
    ColumnData, ColumnOut, CoordMsg, MulIn, Payload, Pivots, SubReq, TrsmReq, TrsmSetup, WorkerReq,
    WorkerReqBody,
};

/// The column-block owner operation (see module docs).
#[derive(Clone)]
pub struct WorkerOp {
    sh: Arc<LuShared>,
    me: ThreadId,
    cols: HashMap<usize, Payload>,
}

impl WorkerOp {
    /// Creates the behaviour instance for one thread.
    pub fn new(sh: Arc<LuShared>, me: ThreadId) -> WorkerOp {
        WorkerOp {
            sh,
            me,
            cols: HashMap::new(),
        }
    }

    fn on_column(&mut self, m: ColumnData, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        sh.charge_msg_prep(ctx, m.col.wire());
        ctx.account_state(m.col.heap() as i64);
        let ack = if m.migration {
            CoordMsg::MigrateAck { j: m.j }
        } else {
            CoordMsg::ColStored { j: m.j }
        };
        self.cols.insert(m.j, m.col);
        ctx.post(sh.ids.coord, Box::new(ack));
    }

    fn on_request(&mut self, m: WorkerReq, ctx: &mut dyn OpCtx) {
        match m.body {
            WorkerReqBody::Panel { k } => self.do_panel(k, ctx),
            WorkerReqBody::Flip { k, j, pivots } => self.do_flip(k, j, pivots, ctx),
            WorkerReqBody::Evict { j, to } => self.do_evict(j, to, ctx),
            WorkerReqBody::Dump { j } => self.do_dump(j, ctx),
        }
    }

    /// Step 1: rectangular LU factorization with partial pivoting of the
    /// panel (rows `k·r..n` of the local column block `k`).
    fn do_panel(&mut self, k: usize, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let (n, r, kb) = (sh.cfg.n, sh.cfg.r, sh.kb);
        let m = n - k * r;
        let col = self.cols.get_mut(&k).expect("panel column not local");

        let (pivots, l11, l21_blocks) = if sh.compute() {
            let mat = col.matrix_mut();
            let mut panel = mat.block(k * r, 0, m, r);
            let mut piv = Vec::new();
            panel_lu(&mut panel, &mut piv);
            mat.set_block(k * r, 0, &panel);
            let l11 = panel.block(0, 0, r, r);
            let l21: Vec<Payload> = (k + 1..kb)
                .map(|i| Payload::Real(panel.block((i - k) * r, 0, r, r)))
                .collect();
            (Pivots(piv), Payload::Real(l11), l21)
        } else {
            // Identity pivots: swap step t with row t (no-op flips).
            let piv = Pivots((0..r).collect());
            let l11 = sh.make_payload(r, r, || unreachable!());
            let l21: Vec<Payload> = (k + 1..kb)
                .map(|_| sh.make_payload(r, r, || unreachable!()))
                .collect();
            (piv, l11, l21)
        };
        sh.charge(ctx, |c| c.panel(m, r));

        if k + 1 < kb {
            // Local posts: L11 + pivots to the trsm generator, L21 to the
            // multiplication generator — both run on this thread (the
            // paper's "blocks from L21 are available on the local thread
            // within which the merge operation is executing").
            ctx.post(
                sh.ids.trsmgen,
                Box::new(TrsmSetup {
                    k,
                    hub: self.me,
                    l11,
                    pivots: pivots.clone(),
                }),
            );
            ctx.post(
                sh.ids.mulgen,
                Box::new(MulIn::L21 {
                    k,
                    hub: self.me,
                    blocks: l21_blocks,
                }),
            );
        }
        ctx.post(sh.ids.coord, Box::new(CoordMsg::PanelPivots { k, pivots }));
    }

    /// Step 2 on column `j`: apply panel `k`'s row flips, then solve the
    /// triangular system producing `T12(k, j)`.
    fn on_trsm(&mut self, m: TrsmReq, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let r = sh.cfg.r;
        let col = self.cols.get_mut(&m.j).expect("trsm column not local");
        let t12 = if sh.compute() {
            let mat = col.matrix_mut();
            apply_row_swaps(mat, m.k * r, &m.pivots.0);
            let mut block = mat.block(m.k * r, 0, r, r);
            trsm_lower_unit(m.l11.matrix(), &mut block);
            mat.set_block(m.k * r, 0, &block);
            Payload::Real(block)
        } else {
            sh.make_payload(r, r, || unreachable!())
        };
        sh.charge(ctx, |c| c.row_flip(r, r) + c.trsm(r, r));
        sh.charge_msg_prep(ctx, t12.wire());
        ctx.post(
            sh.ids.mulgen,
            Box::new(MulIn::TrsmDone {
                k: m.k,
                j: m.j,
                hub: m.hub,
                owner: self.me,
                t12,
            }),
        );
    }

    /// Step 3 tail: subtract a finished product from block row `i` of the
    /// local column `j`.
    fn on_sub(&mut self, m: SubReq, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let r = sh.cfg.r;
        if sh.compute() {
            let col = self.cols.get_mut(&m.j).expect("sub column not local");
            let mat = col.matrix_mut();
            let prod = m.prod.matrix();
            for x in 0..r {
                let dst = &mut mat.row_mut(m.i * r + x)[..r];
                let src = prod.row(x);
                for y in 0..r {
                    dst[y] -= src[y];
                }
            }
        }
        sh.charge(ctx, |c| c.subtract(r, r));
        ctx.post(sh.ids.coord, Box::new(CoordMsg::SubDone { k: m.k, j: m.j }));
    }

    /// Row flipping of a previous column `j < k` (op (g)).
    fn do_flip(&mut self, k: usize, j: usize, pivots: Pivots, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let r = sh.cfg.r;
        if sh.compute() {
            let col = self.cols.get_mut(&j).expect("flip column not local");
            apply_row_swaps(col.matrix_mut(), k * r, &pivots.0);
        }
        sh.charge(ctx, |c| c.row_flip(r, r));
        ctx.post(sh.ids.coord, Box::new(CoordMsg::FlipDone { k, j }));
    }

    /// Thread removal: hand the column over to its new owner.
    fn do_evict(&mut self, j: usize, to: ThreadId, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let col = self.cols.remove(&j).expect("evicted column not local");
        ctx.account_state(-(col.heap() as i64));
        sh.charge_msg_prep(ctx, col.wire());
        ctx.post(
            sh.ids.worker,
            Box::new(ColumnData {
                j,
                dest: to,
                migration: true,
                col,
            }),
        );
    }

    /// Verification dump of a finished column.
    fn do_dump(&mut self, j: usize, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let col = self.cols.remove(&j).expect("dump column not local");
        ctx.account_state(-(col.heap() as i64));
        sh.charge_msg_prep(ctx, col.wire());
        ctx.post(sh.ids.collect, Box::new(ColumnOut { j, col }));
    }
}

impl Operation for WorkerOp {
    crate::ops::impl_lu_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let any = obj.into_any();
        let any = match any.downcast::<ColumnData>() {
            Ok(m) => return self.on_column(*m, ctx),
            Err(a) => a,
        };
        let any = match any.downcast::<WorkerReq>() {
            Ok(m) => return self.on_request(*m, ctx),
            Err(a) => a,
        };
        let any = match any.downcast::<TrsmReq>() {
            Ok(m) => return self.on_trsm(*m, ctx),
            Err(a) => a,
        };
        match any.downcast::<SubReq>() {
            Ok(m) => self.on_sub(*m, ctx),
            Err(_) => panic!("worker received unexpected data object"),
        }
    }
}
