//! Data objects exchanged by the LU flow graph.
//!
//! Every message type implements [`dps::DataObject`]: its wire size is what
//! the DPS size-counting serializer would report, and its heap bytes feed
//! the engine's memory meter (ghost payloads report size without owning
//! memory — the NOALLOC technique).

use dps::{DataObject, ThreadId};
use linalg::Matrix;

/// Fixed per-message envelope (type tag, indices) in bytes.
pub const MSG_HEADER: u64 = 16;

/// A matrix block payload: real data, allocated-but-unused data, or a ghost.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Really computed data.
    Real(Matrix),
    /// Size-only stand-in (NOALLOC).
    Ghost {
        /// Row count of the block it stands for.
        rows: usize,
        /// Column count of the block it stands for.
        cols: usize,
    },
}

impl Payload {
    /// Allocated zero block (PDEXEC with allocation).
    pub fn alloc(rows: usize, cols: usize) -> Payload {
        Payload::Real(Matrix::zeros(rows, cols))
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        match self {
            Payload::Real(m) => m.rows(),
            Payload::Ghost { rows, .. } => *rows,
        }
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        match self {
            Payload::Real(m) => m.cols(),
            Payload::Ghost { cols, .. } => *cols,
        }
    }

    /// Serialized size: dims header + dense doubles.
    /// Serialized size: dims header plus dense doubles.
    pub fn wire(&self) -> u64 {
        8 + (self.rows() * self.cols() * 8) as u64
    }

    /// Heap bytes owned (0 for ghosts).
    pub fn heap(&self) -> u64 {
        match self {
            Payload::Real(m) => m.heap_bytes(),
            Payload::Ghost { .. } => 0,
        }
    }

    /// The real matrix; panics on ghosts (callers gate on the data mode).
    pub fn matrix(&self) -> &Matrix {
        match self {
            Payload::Real(m) => m,
            Payload::Ghost { .. } => panic!("ghost payload has no matrix"),
        }
    }

    /// Mutable access to the real matrix; panics on ghosts.
    pub fn matrix_mut(&mut self) -> &mut Matrix {
        match self {
            Payload::Real(m) => m,
            Payload::Ghost { .. } => panic!("ghost payload has no matrix"),
        }
    }

    /// Whether real data is present.
    pub fn is_real(&self) -> bool {
        matches!(self, Payload::Real(_))
    }
}

/// Pivot sequence of one panel (local indices relative to the panel top).
#[derive(Clone, Debug, Default)]
pub struct Pivots(pub Vec<usize>);

impl Pivots {
    /// Serialized size of the pivot sequence.
    pub fn wire(&self) -> u64 {
        4 + 4 * self.0.len() as u64
    }
}

// ---------------------------------------------------------------------------
// Messages. One struct per (edge, direction); `dest`-carrying messages are
// routed with `by_target`.
// ---------------------------------------------------------------------------

/// Kick-off token for the init split.
#[derive(Clone)]
pub struct Start;

/// Initial (or migrated) column block heading to its owner.
#[derive(Clone)]
pub struct ColumnData {
    /// Column-block index.
    pub j: usize,
    /// Destination thread (resolved by the `by_target` router).
    pub dest: ThreadId,
    /// `true` when this is a removal-triggered migration (acknowledged with
    /// `MigrateAck` instead of `ColStored`).
    pub migration: bool,
    /// The column-block payload.
    pub col: Payload,
}

/// Requests the coordinator sends to workers.
#[derive(Clone)]
pub enum WorkerReqBody {
    /// Factorize the panel of iteration `k` (the local column `k`).
    Panel {
        /// Iteration (panel) index.
        k: usize,
    },
    /// Apply panel `k`'s pivots to previous column `j < k` (op (g)).
    Flip {
        /// Iteration whose pivots apply.
        k: usize,
        /// Previous column to flip.
        j: usize,
        /// The panel's pivot sequence.
        pivots: Pivots,
    },
    /// Hand column `j` over to thread `to` (thread removal).
    Evict {
        /// Column to migrate.
        j: usize,
        /// New owner thread.
        to: ThreadId,
    },
    /// Send column `j` to the collector (verification dump).
    Dump {
        /// Column to dump.
        j: usize,
    },
}

/// A routed coordinator request (see [`WorkerReqBody`]).
#[derive(Clone)]
pub struct WorkerReq {
    /// Destination thread (resolved by the `by_target` router).
    pub dest: ThreadId,
    /// The request body.
    pub body: WorkerReqBody,
}

/// Notifications the workers send to the coordinator.
#[derive(Clone)]
pub enum CoordMsg {
    /// Column `j` stored at its initial owner.
    ColStored {
        /// Stored column index.
        j: usize,
    },
    /// Panel `k` factored; its pivots for flip scheduling.
    PanelPivots {
        /// Factored panel index.
        k: usize,
        /// The panel's pivot sequence.
        pivots: Pivots,
    },
    /// One subtraction applied to column `j` at iteration `k`.
    SubDone {
        /// Iteration index.
        k: usize,
        /// Updated column index.
        j: usize,
    },
    /// Row flipping of column `j` by panel `k`'s pivots finished.
    FlipDone {
        /// Pivot source iteration.
        k: usize,
        /// Flipped column index.
        j: usize,
    },
    /// Column `j` arrived at its new owner (thread removal).
    MigrateAck {
        /// Migrated column index.
        j: usize,
    },
}

/// Panel results for the trsm-request generator (local to the panel owner).
#[derive(Clone)]
pub struct TrsmSetup {
    /// Iteration (panel) index.
    pub k: usize,
    /// Thread hosting the per-iteration request generators.
    pub hub: ThreadId,
    /// The panel's unit-lower triangle.
    pub l11: Payload,
    /// Panel pivot sequence.
    pub pivots: Pivots,
}

/// Coordinator tells the trsm generator to issue the solve for column `j`.
#[derive(Clone)]
pub struct TrsmGo {
    /// Iteration (panel) index.
    pub k: usize,
    /// Column-block index.
    pub j: usize,
    /// Thread hosting the per-iteration request generators.
    pub hub: ThreadId,
    /// Owner thread of the affected column block.
    pub owner: ThreadId,
}

/// Triangular-solve request carrying `L11` + pivots to column `j`'s owner.
#[derive(Clone)]
pub struct TrsmReq {
    /// Iteration (panel) index.
    pub k: usize,
    /// Column-block index.
    pub j: usize,
    /// Destination thread (resolved by the `by_target` router).
    pub dest: ThreadId,
    /// Thread hosting the per-iteration request generators.
    pub hub: ThreadId,
    /// The panel's unit-lower triangle.
    pub l11: Payload,
    /// Panel pivot sequence.
    pub pivots: Pivots,
}

/// Inputs of the multiplication-request generator (runs on the panel owner).
#[derive(Clone)]
pub enum MulIn {
    /// `L21` blocks, local from the panel factorization.
    L21 {
        /// Iteration (panel) index.
        k: usize,
        /// The generator's thread (the panel owner).
        hub: ThreadId,
        /// The `L21` blocks below the panel, in row order.
        blocks: Vec<Payload>,
    },
    /// A solved `T12` block arriving from column `j`'s owner.
    TrsmDone {
        /// Iteration (panel) index.
        k: usize,
        /// Solved column index.
        j: usize,
        /// The generator's thread (the panel owner).
        hub: ThreadId,
        /// Owner thread of column `j` (destination of the products).
        owner: ThreadId,
        /// The solved block.
        t12: Payload,
    },
}

impl MulIn {
    /// The generator thread this message is addressed to.
    pub fn hub(&self) -> ThreadId {
        match self {
            MulIn::L21 { hub, .. } | MulIn::TrsmDone { hub, .. } => *hub,
        }
    }
}

/// One block multiplication request: `B(i,j) -= a · b` (paper: "two matrix
/// blocks of size r × r").
#[derive(Clone)]
pub struct MulReq {
    /// Iteration (panel) index.
    pub k: usize,
    /// Block-row index.
    pub i: usize,
    /// Column-block index.
    pub j: usize,
    /// Owner of column `j` — where the product must be subtracted.
    pub owner: ThreadId,
    /// First operand block (`L21(i)`).
    pub a: Payload,
    /// Second operand block (`T12(j)`).
    pub b: Payload,
}

/// A finished product heading to the subtraction at column `j`'s owner.
#[derive(Clone)]
pub struct SubReq {
    /// Iteration (panel) index.
    pub k: usize,
    /// Block-row index.
    pub i: usize,
    /// Column-block index.
    pub j: usize,
    /// Destination thread (resolved by the `by_target` router).
    pub dest: ThreadId,
    /// The product block.
    pub prod: Payload,
}

/// Column dump for verification.
#[derive(Clone)]
pub struct ColumnOut {
    /// Column-block index.
    pub j: usize,
    /// The column-block payload.
    pub col: Payload,
}

/// Key of one block multiplication in the PM sub-graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MulKey {
    /// Iteration (panel) index.
    pub k: usize,
    /// Block-row index.
    pub i: usize,
    /// Column-block index.
    pub j: usize,
}

/// Work items of the PM sub-flow-graph (paper Figure 7).
#[derive(Clone)]
pub enum PmWork {
    /// (a)→(b): store a column sub-block of the second matrix.
    Col {
        /// The enclosing block multiplication.
        key: MulKey,
        /// Column sub-block index.
        c: usize,
        /// Sub-blocks per dimension (`r / s`).
        q: usize,
        /// Storing thread.
        dest: ThreadId,
        /// Thread running the PM splitter for this multiplication.
        splitter: ThreadId,
        /// Owner thread of the target column block.
        owner: ThreadId,
        /// The `r × s` column sub-block.
        data: Payload,
    },
    /// (d)→(e): a line block of the first matrix to multiply with the
    /// locally stored column sub-block `c`.
    Line {
        /// The enclosing block multiplication.
        key: MulKey,
        /// Line sub-block index.
        l: usize,
        /// Column sub-block index stored at the destination.
        c: usize,
        /// Sub-blocks per dimension (`r / s`).
        q: usize,
        /// Thread storing column sub-block `c`.
        dest: ThreadId,
        /// Thread assembling the product.
        merge_at: ThreadId,
        /// The `s × r` line sub-block.
        data: Payload,
    },
}

/// (b)→(c): notification that a column sub-block was stored.
#[derive(Clone)]
pub struct PmColAck {
    /// The enclosing block multiplication.
    pub key: MulKey,
    /// Column sub-block index.
    pub c: usize,
    /// Thread storing the column sub-block.
    pub storer: ThreadId,
    /// Destination thread (resolved by the `by_target` router).
    pub dest: ThreadId,
}

/// (e)→(f): one `s × s` product piece.
#[derive(Clone)]
pub struct PmPiece {
    /// The enclosing block multiplication.
    pub key: MulKey,
    /// Line sub-block index.
    pub l: usize,
    /// Column sub-block index.
    pub c: usize,
    /// Sub-blocks per dimension (`r / s`).
    pub q: usize,
    /// Owner thread of the affected column block.
    pub owner: ThreadId,
    /// Thread assembling the product (column owner).
    pub merge_at: ThreadId,
    /// The block payload.
    pub data: Payload,
}

// --- DataObject implementations -------------------------------------------

impl DataObject for Start {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER
    }
}

impl DataObject for ColumnData {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + self.col.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.col.heap()
    }
}

impl DataObject for WorkerReq {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER
            + match &self.body {
                WorkerReqBody::Panel { .. } => 8,
                WorkerReqBody::Flip { pivots, .. } => 16 + pivots.wire(),
                WorkerReqBody::Evict { .. } => 16,
                WorkerReqBody::Dump { .. } => 8,
            }
    }
}

impl DataObject for CoordMsg {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER
            + match self {
                CoordMsg::PanelPivots { pivots, .. } => 8 + pivots.wire(),
                _ => 16,
            }
    }
}

impl DataObject for TrsmSetup {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + self.l11.wire() + self.pivots.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.l11.heap()
    }
}

impl DataObject for TrsmGo {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 16
    }
}

impl DataObject for TrsmReq {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 16 + self.l11.wire() + self.pivots.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.l11.heap()
    }
}

impl DataObject for MulIn {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER
            + match self {
                MulIn::L21 { blocks, .. } => 8 + blocks.iter().map(Payload::wire).sum::<u64>(),
                MulIn::TrsmDone { t12, .. } => 16 + t12.wire(),
            }
    }
    fn heap_bytes(&self) -> u64 {
        match self {
            MulIn::L21 { blocks, .. } => blocks.iter().map(Payload::heap).sum(),
            MulIn::TrsmDone { t12, .. } => t12.heap(),
        }
    }
}

impl DataObject for MulReq {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 24 + self.a.wire() + self.b.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.a.heap() + self.b.heap()
    }
}

impl DataObject for SubReq {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 24 + self.prod.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.prod.heap()
    }
}

impl DataObject for ColumnOut {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + self.col.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.col.heap()
    }
}

impl DataObject for PmWork {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER
            + match self {
                PmWork::Col { data, .. } => 32 + data.wire(),
                PmWork::Line { data, .. } => 32 + data.wire(),
            }
    }
    fn heap_bytes(&self) -> u64 {
        match self {
            PmWork::Col { data, .. } | PmWork::Line { data, .. } => data.heap(),
        }
    }
}

impl DataObject for PmColAck {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 24
    }
}

impl DataObject for PmPiece {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 32 + self.data.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.data.heap()
    }
}

/// The factorization the application produced (Real mode only).
#[derive(Debug)]
pub struct LuOutput {
    /// Compact LU storage (L strictly lower with unit diagonal, U upper).
    pub lu: Matrix,
    /// Global pivot sequence, as in [`linalg::LuFactors`].
    pub pivots: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes_are_mode_independent() {
        let real = Payload::alloc(10, 20);
        let ghost = Payload::Ghost { rows: 10, cols: 20 };
        assert_eq!(real.wire(), ghost.wire());
        assert_eq!(real.wire(), 8 + 10 * 20 * 8);
        assert!(real.heap() >= 1600);
        assert_eq!(ghost.heap(), 0);
        assert!(real.is_real());
        assert!(!ghost.is_real());
    }

    #[test]
    #[should_panic(expected = "ghost payload")]
    fn ghost_matrix_access_panics() {
        Payload::Ghost { rows: 1, cols: 1 }.matrix();
    }

    #[test]
    fn message_wire_sizes_scale_with_payload() {
        let mk = |rows, cols| MulReq {
            k: 0,
            i: 1,
            j: 2,
            owner: ThreadId(0),
            a: Payload::Ghost { rows, cols },
            b: Payload::Ghost { rows, cols },
        };
        let small = DataObject::wire_size(&mk(8, 8));
        let big = DataObject::wire_size(&mk(64, 64));
        assert!(big > small);
        assert_eq!(big - small, 2 * 8 * (64 * 64 - 8 * 8));
    }

    #[test]
    fn pivots_wire_size() {
        assert_eq!(Pivots(vec![0; 10]).wire(), 44);
    }

    #[test]
    fn notification_messages_are_small() {
        let m = CoordMsg::SubDone { k: 3, j: 4 };
        assert!(DataObject::wire_size(&m) < 64);
        let f = CoordMsg::PanelPivots {
            k: 0,
            pivots: Pivots(vec![0; 100]),
        };
        assert!(DataObject::wire_size(&f) > 400);
    }
}
