//! Running the LU application on the simulator or the testbed, and
//! extracting the paper's quantities from the run report.

use std::sync::Arc;

use desim::{SimDuration, SimTime};
use dps_sim::{RunReport, SimCheckpoint, SimConfig, SimError, SimResult};
use linalg::blocked::LuFactors;
use linalg::{lu_residual, Matrix};
use netmodel::NetParams;
use testbed::TestbedParams;

use crate::builder::build_lu_app;
use crate::config::{DataMode, LuConfig};
use crate::ops::coord::CoordOp;
use crate::payload::CoordMsg;

/// Outcome of one LU run.
pub struct LuRun {
    /// The engine's run report.
    pub report: RunReport,
    /// Factorization time: completion minus the end of the initial matrix
    /// distribution (the paper's measured quantity).
    pub factorization_time: SimDuration,
    /// Relative residual `max|P·A − L·U| / max|A|` (Real mode only).
    pub residual: Option<f64>,
}

fn finish(cfg: &LuConfig, sh: &crate::ops::LuShared, report: RunReport) -> SimResult<LuRun> {
    if !report.terminated {
        return Err(SimError::protocol(
            "LU run went quiescent without terminating",
        ));
    }
    let dist = report
        .mark_time("dist")
        .ok_or_else(|| SimError::protocol("LU run recorded no 'dist' mark"))?;
    // The factorization ends at the final iteration mark; in Real mode the
    // run continues past it with the verification dump, which is not part
    // of the measured quantity.
    let final_mark = format!("iter:{}", cfg.k_blocks());
    let end = report
        .mark_time(&final_mark)
        .ok_or_else(|| SimError::protocol(format!("LU run recorded no '{final_mark}' mark")))?;
    let factorization_time = end - dist;
    let residual = if cfg.mode == DataMode::Real {
        let out = sh
            .result
            .lock()
            .expect("result lock")
            .take()
            .ok_or_else(|| SimError::protocol("Real mode run produced no factorization"))?;
        let a = Matrix::random(cfg.n, cfg.n, cfg.seed);
        let f = LuFactors {
            lu: out.lu,
            pivots: out.pivots,
        };
        Some(lu_residual(&a, &f))
    } else {
        None
    };
    Ok(LuRun {
        report,
        factorization_time,
        residual,
    })
}

/// One-line context for errors surfacing from an LU run.
fn lu_context(cfg: &LuConfig) -> String {
    format!(
        "running LU n={} r={} on {} nodes ({} workers)",
        cfg.n, cfg.r, cfg.nodes, cfg.workers
    )
}

/// Predicts the run on the paper's machine model (the simulator).
pub fn predict_lu(cfg: &LuConfig, net: NetParams, simcfg: &SimConfig) -> SimResult<LuRun> {
    let (app, sh) = build_lu_app(cfg.clone());
    let report = dps_sim::simulate(&app, net, simcfg).map_err(|e| e.context(lu_context(cfg)))?;
    finish(cfg, &sh, report).map_err(|e| e.context(lu_context(cfg)))
}

/// Predicts the run against an arbitrary machine model (e.g. a
/// `dps_sim::FaultFabric` with injected slowdowns and link degradations).
pub fn predict_lu_with_fabric(
    cfg: &LuConfig,
    fabric: &mut dyn dps_sim::Fabric,
    simcfg: &SimConfig,
) -> SimResult<LuRun> {
    let (app, sh) = build_lu_app(cfg.clone());
    let report = dps_sim::simulate_with_fabric(&app, fabric, simcfg)
        .map_err(|e| e.context(lu_context(cfg)))?;
    finish(cfg, &sh, report).map_err(|e| e.context(lu_context(cfg)))
}

/// A pausable/forkable LU prediction run: the building block of
/// shared-prefix sweeps (one common prefix, N divergent removal plans).
///
/// Only prediction (`DataMode::Alloc`/`Ghost`) runs fork — `Real` mode
/// behaviours opt out of cloning and [`LuCheckpoint::fork`] fails with
/// `ForkRefused`.
pub struct LuCheckpoint {
    ck: SimCheckpoint,
    cfg: LuConfig,
    sh: Arc<crate::ops::LuShared>,
}

impl LuCheckpoint {
    /// Builds the application and pauses it at virtual time zero.
    pub fn start(cfg: &LuConfig, net: NetParams, simcfg: &SimConfig) -> SimResult<LuCheckpoint> {
        let (app, sh) = build_lu_app(cfg.clone());
        Ok(LuCheckpoint {
            ck: dps_sim::simulate_until(Arc::new(app), net, simcfg, SimTime::ZERO)
                .map_err(|e| e.context(lu_context(cfg)))?,
            cfg: cfg.clone(),
            sh,
        })
    }

    /// Advances until the next event would pass `t` (see
    /// [`SimCheckpoint::advance_until`]).
    pub fn advance_until(&mut self, t: SimTime) -> SimResult<bool> {
        self.ck.advance_until(t)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ck.now()
    }

    /// Committed simulator steps executed so far (see
    /// [`SimCheckpoint::steps`]) — the deterministic cost metric what-if
    /// budget accounting is charged in.
    pub fn steps(&self) -> u64 {
        self.ck.steps()
    }

    /// Advances until the coordinator is about to close iteration
    /// `after`'s barrier (1-based, matching removal-plan notation: the
    /// decision step that records `iter:{after}` and consults the removal
    /// plan for removals "after iteration `after`"). Returns `Ok(false)` if
    /// the run finished first — e.g. `after` is past the last barrier.
    pub fn pause_before_barrier(&mut self, after: usize) -> SimResult<bool> {
        assert!(after >= 1, "barriers are 1-based");
        let coord = self.sh.ids.coord;
        let target = after - 1;
        self.ck.run_until(Box::new(move |p| {
            if p.op != coord {
                return false;
            }
            let Some(state) = p.state.and_then(|s| s.as_any()) else {
                return false;
            };
            let Some(c) = state.downcast_ref::<CoordOp>() else {
                return false;
            };
            c.current_iteration() == target
                && c.barrier_closing(dps::downcast_ref::<CoordMsg>(p.obj))
        }))
    }

    /// An independent copy of the paused run; fails with `ForkRefused` when
    /// the configuration cannot fork (Real mode).
    pub fn fork(&mut self) -> SimResult<LuCheckpoint> {
        Ok(LuCheckpoint {
            ck: self.ck.fork()?,
            cfg: self.cfg.clone(),
            sh: Arc::clone(&self.sh),
        })
    }

    /// Installs a different removal plan in this branch's coordinator —
    /// the divergence rewrite applied to a fresh fork. Entries at or
    /// before the current iteration are dropped. Panics if the coordinator
    /// never ran (pause the checkpoint after `dist` first).
    pub fn set_removal_plan(&mut self, plan: Vec<(usize, u32)>) {
        let (coord, thread) = (self.sh.ids.coord, self.main_thread());
        self.ck
            .with_op_state::<CoordOp, _>(coord, thread, |c| c.set_removal_plan(plan))
            .expect("coordinator state available for rewrite");
    }

    /// Runs to completion and extracts the paper's quantities.
    pub fn finish(self) -> SimResult<LuRun> {
        let ctx = lu_context(&self.cfg);
        let report = self.ck.finish().map_err(|e| e.context(ctx.clone()))?;
        finish(&self.cfg, &self.sh, report).map_err(|e| e.context(ctx))
    }

    fn main_thread(&self) -> dps::ThreadId {
        // The coordinator runs on the deployment's "main" group, a single
        // thread the builder places after the workers.
        dps::ThreadId(self.cfg.workers)
    }
}

/// "Measures" the run on the ground-truth testbed emulator.
pub fn measure_lu(
    cfg: &LuConfig,
    tb: TestbedParams,
    seed: u64,
    simcfg: &SimConfig,
) -> SimResult<LuRun> {
    let (app, sh) = build_lu_app(cfg.clone());
    let report =
        testbed::measure(&app, tb, seed, simcfg).map_err(|e| e.context(lu_context(cfg)))?;
    finish(cfg, &sh, report).map_err(|e| e.context(lu_context(cfg)))
}

/// Per-iteration wall time and efficiency, from the run's mark-delimited
/// intervals (`iter:1` … `iter:K`) — the data of the paper's Figure 11.
pub fn iteration_times(report: &RunReport) -> Vec<(String, SimDuration, f64)> {
    report
        .intervals
        .iter()
        .filter(|i| i.label.starts_with("iter:"))
        .map(|i| (i.label.clone(), i.span(), i.efficiency()))
        .collect()
}
