//! Running the LU application on the simulator or the testbed, and
//! extracting the paper's quantities from the run report.

use desim::SimDuration;
use dps_sim::{RunReport, SimConfig};
use linalg::blocked::LuFactors;
use linalg::{lu_residual, Matrix};
use netmodel::NetParams;
use testbed::TestbedParams;

use crate::builder::build_lu_app;
use crate::config::{DataMode, LuConfig};

/// Outcome of one LU run.
pub struct LuRun {
    /// The engine's run report.
    pub report: RunReport,
    /// Factorization time: completion minus the end of the initial matrix
    /// distribution (the paper's measured quantity).
    pub factorization_time: SimDuration,
    /// Relative residual `max|P·A − L·U| / max|A|` (Real mode only).
    pub residual: Option<f64>,
}

fn finish(cfg: &LuConfig, sh: &crate::ops::LuShared, report: RunReport) -> LuRun {
    assert!(
        report.terminated,
        "LU run did not terminate: {:?}",
        report.stall
    );
    let dist = report.mark_time("dist").expect("distribution mark");
    // The factorization ends at the final iteration mark; in Real mode the
    // run continues past it with the verification dump, which is not part
    // of the measured quantity.
    let end = report
        .mark_time(&format!("iter:{}", cfg.k_blocks()))
        .expect("final iteration mark");
    let factorization_time = end - dist;
    let residual = if cfg.mode == DataMode::Real {
        let out = sh
            .result
            .lock()
            .expect("result lock")
            .take()
            .expect("Real mode produces a factorization");
        let a = Matrix::random(cfg.n, cfg.n, cfg.seed);
        let f = LuFactors {
            lu: out.lu,
            pivots: out.pivots,
        };
        Some(lu_residual(&a, &f))
    } else {
        None
    };
    LuRun {
        report,
        factorization_time,
        residual,
    }
}

/// Predicts the run on the paper's machine model (the simulator).
pub fn predict_lu(cfg: &LuConfig, net: NetParams, simcfg: &SimConfig) -> LuRun {
    let (app, sh) = build_lu_app(cfg.clone());
    let report = dps_sim::simulate(&app, net, simcfg);
    finish(cfg, &sh, report)
}

/// Predicts the run against an arbitrary machine model (e.g. a
/// `dps_sim::FaultFabric` with injected slowdowns and link degradations).
pub fn predict_lu_with_fabric(
    cfg: &LuConfig,
    fabric: &mut dyn dps_sim::Fabric,
    simcfg: &SimConfig,
) -> LuRun {
    let (app, sh) = build_lu_app(cfg.clone());
    let report = dps_sim::simulate_with_fabric(&app, fabric, simcfg);
    finish(cfg, &sh, report)
}

/// "Measures" the run on the ground-truth testbed emulator.
pub fn measure_lu(cfg: &LuConfig, tb: TestbedParams, seed: u64, simcfg: &SimConfig) -> LuRun {
    let (app, sh) = build_lu_app(cfg.clone());
    let report = testbed::measure(&app, tb, seed, simcfg);
    finish(cfg, &sh, report)
}

/// Per-iteration wall time and efficiency, from the run's mark-delimited
/// intervals (`iter:1` … `iter:K`) — the data of the paper's Figure 11.
pub fn iteration_times(report: &RunReport) -> Vec<(String, SimDuration, f64)> {
    report
        .intervals
        .iter()
        .filter(|i| i.label.starts_with("iter:"))
        .map(|i| (i.label.clone(), i.span(), i.efficiency()))
        .collect()
}
