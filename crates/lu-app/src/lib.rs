//! Block LU factorization as a DPS application — the paper's evaluation
//! workload (§5–§6).
//!
//! The matrix is distributed onto worker threads in column blocks of size
//! `r × n`. Each iteration `k` factorizes the panel (column block `k`),
//! solves triangular systems on the other column blocks (after row
//! flipping), performs the distributed block multiplications `L21·T12`, and
//! subtracts the products — then recurses on the trailing matrix. All the
//! paper's variants are implemented:
//!
//! * **Basic** flow graph — merge/split barriers between phases;
//! * **Pipelined (P)** — stream operations start iteration `k+1`'s panel as
//!   soon as column `k+1` is complete and stream triangular-solve and
//!   multiplication requests as their inputs become available;
//! * **Flow control (FC)** — a credit window on the stream generating
//!   multiplication requests;
//! * **Parallel sub-block multiplication (PM)** — each `r × r`
//!   multiplication is decomposed into `s × r` line blocks and `r × s`
//!   column blocks multiplied across threads (the paper's Figure 7);
//! * **Dynamic thread removal** — after a configured iteration, worker
//!   threads are deallocated; their column blocks migrate to the survivors
//!   and subsequent work is automatically redistributed.
//!
//! Three data modes support the paper's Table 1: [`DataMode::Real`]
//! (allocate + really compute — direct execution, verifiable against the
//! sequential reference), [`DataMode::Alloc`] (allocate but replace kernels
//! with benchmarked charges — PDEXEC) and [`DataMode::Ghost`] (ghost
//! payloads, no allocation — PDEXEC NOALLOC).

#![warn(missing_docs)]

pub mod builder;
pub mod config;
pub mod ops;
pub mod payload;
pub mod run;

pub use builder::build_lu_app;
pub use config::{DataMode, LuConfig};
pub use payload::{LuOutput, Payload};
pub use run::{
    iteration_times, measure_lu, predict_lu, predict_lu_with_fabric, LuCheckpoint, LuRun,
};
