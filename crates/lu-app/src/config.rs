//! LU application configuration: matrix, deployment, flow-graph variants.

use perfmodel::LuCost;

/// What the data objects carry (paper Table 1's three simulation settings).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataMode {
    /// Allocate and really compute: direct execution; the result is
    /// verifiable against the sequential reference.
    Real,
    /// Allocate matrices but skip the kernels (durations come from
    /// charges): the paper's PDEXEC.
    Alloc,
    /// Ghost payloads reporting sizes without allocating: PDEXEC NOALLOC.
    Ghost,
}

/// Full configuration of one LU run.
#[derive(Clone)]
pub struct LuConfig {
    /// Matrix order (the paper uses 2592).
    pub n: usize,
    /// Column-block width; must divide `n`.
    pub r: usize,
    /// Compute nodes.
    pub nodes: u32,
    /// Worker threads (≥ nodes; thread `t` lives on node `t % nodes`).
    /// The paper's "eight column blocks on four nodes" is `workers: 8,
    /// nodes: 4`.
    pub workers: u32,
    /// Pipelined flow graph (P) instead of basic barriers.
    pub pipelined: bool,
    /// Flow-control window (FC) on the multiplication-request stream.
    pub flow_control: Option<usize>,
    /// Parallel sub-block multiplication (PM) with sub-block size `s`
    /// (must divide `r`).
    pub parallel_mul: Option<usize>,
    /// Thread-removal plan: (after 1-based iteration, number of workers to
    /// kill). Requires the basic flow graph, like the paper's experiments.
    pub removal: Vec<(usize, u32)>,
    /// Payload mode.
    pub mode: DataMode,
    /// Kernel cost model for charges (PDEXEC). `None` leaves every atomic
    /// step to direct-execution measurement.
    pub cost: Option<LuCost>,
    /// Seed of the input matrix in `Real` mode.
    pub seed: u64,
}

impl LuConfig {
    /// A plain basic-graph configuration with one worker per node.
    pub fn new(n: usize, r: usize, nodes: u32) -> LuConfig {
        LuConfig {
            n,
            r,
            nodes,
            workers: nodes,
            pipelined: false,
            flow_control: None,
            parallel_mul: None,
            removal: Vec::new(),
            mode: DataMode::Ghost,
            cost: None,
            seed: 42,
        }
    }

    /// Number of column blocks `K = n / r`.
    pub fn k_blocks(&self) -> usize {
        self.n / self.r
    }

    /// Short variant tag like `"P+FC"` (paper notation).
    pub fn variant_label(&self) -> String {
        let mut parts = Vec::new();
        if self.pipelined {
            parts.push("P".to_string());
        }
        if self.parallel_mul.is_some() {
            parts.push("PM".to_string());
        }
        if self.flow_control.is_some() {
            parts.push("FC".to_string());
        }
        if parts.is_empty() {
            "Basic".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Checks structural consistency (divisibility, worker counts,
    /// variant constraints, removal plan ordering).
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 || self.r == 0 || !self.n.is_multiple_of(self.r) {
            return Err(format!(
                "block size {} must divide order {}",
                self.r, self.n
            ));
        }
        if self.nodes == 0 || self.workers < self.nodes {
            return Err("need at least one worker per node".into());
        }
        if let Some(s) = self.parallel_mul {
            if s == 0 || !self.r.is_multiple_of(s) || s == self.r {
                return Err(format!(
                    "sub-block size {s} must properly divide block size {}",
                    self.r
                ));
            }
        }
        if let Some(w) = self.flow_control {
            if w == 0 {
                return Err("flow-control window must be positive".into());
            }
        }
        if !self.removal.is_empty() {
            if self.pipelined {
                return Err("thread removal requires the basic flow graph".into());
            }
            let k = self.k_blocks();
            let mut total: u32 = 0;
            let mut last_iter = 0;
            for &(after, count) in &self.removal {
                if after == 0 || after >= k {
                    return Err(format!(
                        "removal after iteration {after} out of range 1..{k}"
                    ));
                }
                if after <= last_iter {
                    return Err("removal plan must be sorted by iteration".into());
                }
                last_iter = after;
                total += count;
            }
            if total >= self.workers {
                return Err("cannot remove every worker".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        LuConfig::new(2592, 216, 8).validate().unwrap();
        assert_eq!(LuConfig::new(2592, 216, 8).k_blocks(), 12);
    }

    #[test]
    fn variant_labels() {
        let mut c = LuConfig::new(256, 64, 4);
        assert_eq!(c.variant_label(), "Basic");
        c.pipelined = true;
        assert_eq!(c.variant_label(), "P");
        c.flow_control = Some(8);
        assert_eq!(c.variant_label(), "P+FC");
        c.parallel_mul = Some(32);
        assert_eq!(c.variant_label(), "P+PM+FC");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = LuConfig::new(100, 33, 4);
        assert!(c.validate().is_err()); // indivisible r
        c = LuConfig::new(256, 64, 4);
        c.workers = 2;
        assert!(c.validate().is_err()); // fewer workers than nodes
        c = LuConfig::new(256, 64, 4);
        c.parallel_mul = Some(64);
        assert!(c.validate().is_err()); // s == r
        c = LuConfig::new(256, 64, 4);
        c.parallel_mul = Some(48);
        assert!(c.validate().is_err()); // s does not divide r
        c = LuConfig::new(256, 64, 4);
        c.pipelined = true;
        c.removal = vec![(1, 2)];
        assert!(c.validate().is_err()); // removal needs basic graph
        c = LuConfig::new(256, 64, 4);
        c.removal = vec![(1, 4)];
        assert!(c.validate().is_err()); // would remove every worker
        c = LuConfig::new(256, 64, 4);
        c.removal = vec![(2, 1), (1, 1)];
        assert!(c.validate().is_err()); // unsorted plan
        c = LuConfig::new(256, 64, 4);
        c.removal = vec![(1, 1), (2, 1)];
        assert!(c.validate().is_ok());
    }
}
