//! Assembles the LU [`dps::Application`] from an [`LuConfig`].

use std::sync::{Arc, Mutex};

use dps::{by_target, round_robin, to_thread, AppBuilder, Application, OpKind, ThreadId};

use crate::config::LuConfig;
use crate::ops::collect::CollectOp;
use crate::ops::coord::CoordOp;
use crate::ops::hub::{MulGenOp, TrsmGenOp};
use crate::ops::init::InitOp;
use crate::ops::mult::MultOp;
use crate::ops::pm::{PmMergeOp, PmSplitOp, PmWorkerOp};
use crate::ops::worker::WorkerOp;
use crate::ops::{LuShared, OpIds};
use crate::payload::{
    ColumnData, MulIn, PmColAck, PmPiece, PmWork, Start, SubReq, TrsmGo, TrsmReq, TrsmSetup,
    WorkerReq,
};

impl PmWork {
    fn dest(&self) -> ThreadId {
        match self {
            PmWork::Col { dest, .. } | PmWork::Line { dest, .. } => *dest,
        }
    }
}

/// Builds the DPS application (and the shared handle for retrieving the
/// verification output) for one LU configuration.
pub fn build_lu_app(cfg: LuConfig) -> (Application, Arc<LuShared>) {
    cfg.validate().expect("invalid LU configuration");
    let kb = cfg.k_blocks();

    let mut b = AppBuilder::new("block-lu");
    // Deployment: worker thread t on node t % nodes; the main thread (init,
    // coordinator, collector) shares node 0.
    let nodes: Vec<u32> = (0..cfg.workers).map(|t| t % cfg.nodes).collect();
    b.thread_group_on_nodes("workers", &nodes);
    let main = b.thread_on_node("main", 0);

    let init = b.declare("init", OpKind::Split);
    let worker = b.declare("worker", OpKind::Leaf);
    let trsmgen = b.declare("trsmgen", OpKind::Stream);
    let mulgen = b.declare("mulgen", OpKind::Stream);
    let mult = b.declare("mult", OpKind::Leaf);
    let pmsplit = b.declare("pmsplit", OpKind::Split);
    let pmworker = b.declare("pmworker", OpKind::Leaf);
    let pmmerge = b.declare("pmmerge", OpKind::Merge);
    let coord = b.declare("coord", OpKind::Stream);
    let collect = b.declare("collect", OpKind::Merge);

    let ids = OpIds {
        init,
        worker,
        trsmgen,
        mulgen,
        mult,
        pmsplit,
        pmworker,
        pmmerge,
        coord,
        collect,
    };
    let sh = Arc::new(LuShared {
        cfg: cfg.clone(),
        kb,
        ids,
        pending_pivots: Mutex::new(Vec::new()),
        result: Mutex::new(None),
    });

    {
        let sh = sh.clone();
        b.body(init, move |_, _| Box::new(InitOp::new(sh.clone())));
    }
    {
        let sh = sh.clone();
        b.body(worker, move |_, t| Box::new(WorkerOp::new(sh.clone(), t)));
    }
    {
        let sh = sh.clone();
        b.body(trsmgen, move |_, t| Box::new(TrsmGenOp::new(sh.clone(), t)));
    }
    {
        let sh = sh.clone();
        b.body(mulgen, move |_, t| Box::new(MulGenOp::new(sh.clone(), t)));
    }
    {
        let sh = sh.clone();
        b.body(mult, move |_, _| Box::new(MultOp::new(sh.clone())));
    }
    {
        let sh = sh.clone();
        b.body(pmsplit, move |_, t| Box::new(PmSplitOp::new(sh.clone(), t)));
    }
    {
        let sh = sh.clone();
        b.body(pmworker, move |_, t| {
            Box::new(PmWorkerOp::new(sh.clone(), t))
        });
    }
    {
        let sh = sh.clone();
        b.body(pmmerge, move |_, _| Box::new(PmMergeOp::new(sh.clone())));
    }
    {
        let sh = sh.clone();
        b.body(coord, move |_, _| Box::new(CoordOp::new(sh.clone())));
    }
    {
        let sh = sh.clone();
        b.body(collect, move |_, _| Box::new(CollectOp::new(sh.clone())));
    }

    // Wiring (see ops module docs for the paper mapping).
    b.edge(init, worker, by_target(|m: &ColumnData| m.dest));
    b.edge(worker, coord, to_thread(main));
    b.edge(worker, trsmgen, by_target(|m: &TrsmSetup| m.hub));
    b.edge(worker, mulgen, by_target(MulIn::hub));
    b.edge(worker, worker, by_target(|m: &ColumnData| m.dest));
    b.edge(worker, collect, to_thread(main));
    b.edge(coord, worker, by_target(|m: &WorkerReq| m.dest));
    b.edge(coord, trsmgen, by_target(|m: &TrsmGo| m.hub));
    b.edge(trsmgen, worker, by_target(|m: &TrsmReq| m.dest));
    b.edge(mulgen, mult, round_robin("workers"));
    b.edge(mulgen, pmsplit, round_robin("workers"));
    b.edge(mult, worker, by_target(|m: &SubReq| m.dest));
    b.edge(pmsplit, pmworker, by_target(PmWork::dest));
    b.edge(pmworker, pmsplit, by_target(|m: &PmColAck| m.dest));
    b.edge(pmworker, pmmerge, by_target(|m: &PmPiece| m.merge_at));
    b.edge(pmmerge, worker, by_target(|m: &SubReq| m.dest));

    if let Some(w) = cfg.flow_control {
        b.flow_control(mulgen, w);
    }
    b.start(init, main, || Box::new(Start));

    let app = b.build().expect("LU application assembles");
    (app, sh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DataMode;

    #[test]
    fn app_assembles_for_all_variants() {
        for (p, fc, pm) in [
            (false, None, None),
            (true, None, None),
            (true, Some(8), None),
            (false, None, Some(32)),
            (true, Some(4), Some(32)),
        ] {
            let mut cfg = LuConfig::new(256, 64, 4);
            cfg.pipelined = p;
            cfg.flow_control = fc;
            cfg.parallel_mul = pm;
            cfg.mode = DataMode::Ghost;
            let (app, sh) = build_lu_app(cfg);
            assert_eq!(app.graph().op_count(), 10);
            assert_eq!(app.deployment().thread_count(), 5);
            assert_eq!(sh.kb, 4);
            assert_eq!(app.window_of(sh.ids.mulgen), fc);
        }
    }

    #[test]
    #[should_panic(expected = "invalid LU configuration")]
    fn invalid_config_panics() {
        build_lu_app(LuConfig::new(100, 33, 4));
    }
}
