//! End-to-end validation of the distributed Jacobi stencil.

use desim::SimDuration;
use dps_sim::{SimConfig, TimingMode};
use lu_app::DataMode;
use netmodel::NetParams;
use perfmodel::PlatformProfile;
use stencil_app::{measure_stencil, predict_stencil, StencilConfig};
use testbed::TestbedParams;

fn simcfg() -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(20),
        ..SimConfig::default()
    }
}

fn real_cfg(n: usize, iters: usize, nodes: u32) -> StencilConfig {
    let mut cfg = StencilConfig::new(n, iters, nodes);
    cfg.mode = DataMode::Real;
    cfg.cost = Some(PlatformProfile::modern_x86());
    cfg
}

#[test]
fn synchronized_stencil_matches_reference() {
    let cfg = real_cfg(64, 6, 4);
    let run = predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.error.unwrap() < 1e-12, "error {:?}", run.error);
}

#[test]
fn asynchronous_stencil_matches_reference() {
    let mut cfg = real_cfg(64, 6, 4);
    cfg.synchronized = false;
    let run = predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.error.unwrap() < 1e-12);
}

#[test]
fn single_worker_stencil_matches_reference() {
    let cfg = real_cfg(32, 4, 1);
    let run = predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.error.unwrap() < 1e-12);
}

#[test]
fn many_bands_on_few_nodes() {
    let mut cfg = real_cfg(64, 5, 2);
    cfg.workers = 8; // four bands per node
    let run = predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(run.error.unwrap() < 1e-12);
}

#[test]
fn testbed_run_matches_reference_too() {
    let mut cfg = real_cfg(64, 4, 4);
    cfg.synchronized = false;
    let run = measure_stencil(&cfg, TestbedParams::sun_cluster(), 5, &simcfg()).unwrap();
    assert!(run.error.unwrap() < 1e-12);
}

#[test]
fn async_pipelining_is_not_slower() {
    // Removing the barrier can only help (loosely coupled neighbours).
    let mut sync = StencilConfig::new(2048, 16, 8);
    sync.mode = DataMode::Ghost;
    let mut async_ = sync.clone();
    async_.synchronized = false;
    let ts = predict_stencil(&sync, NetParams::fast_ethernet(), &simcfg())
        .unwrap()
        .sweep_time;
    let ta = predict_stencil(&async_, NetParams::fast_ethernet(), &simcfg())
        .unwrap()
        .sweep_time;
    assert!(
        ta <= ts,
        "async ({}) must not be slower than synchronized ({})",
        ta,
        ts
    );
}

#[test]
fn stencil_dynamic_efficiency_is_flat() {
    // The contrast with LU: per-iteration efficiency stays constant, so the
    // removal policy recommends keeping every node.
    let mut cfg = StencilConfig::new(2048, 12, 8);
    cfg.mode = DataMode::Ghost;
    let run = predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let profile = cluster_profile(&run.report);
    let effs: Vec<f64> = profile.points.iter().map(|p| p.efficiency).collect();
    let min = effs.iter().cloned().fold(f64::MAX, f64::min);
    let max = effs.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.15,
        "stencil efficiency should be flat: {effs:?}"
    );
    let plan = cluster::recommend_removal(&profile, 8, cluster::ThresholdPolicy::default());
    assert!(plan.is_empty(), "no removal for a flat profile: {plan:?}");
}

fn cluster_profile(report: &dps_sim::RunReport) -> cluster::EfficiencyProfile {
    cluster::profile_from_report(report)
}

#[test]
fn prediction_tracks_testbed_for_stencil() {
    let mut cfg = StencilConfig::new(2048, 16, 8);
    cfg.mode = DataMode::Ghost;
    let p = predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg())
        .unwrap()
        .sweep_time
        .as_secs_f64();
    let m = measure_stencil(&cfg, TestbedParams::sun_cluster(), 11, &simcfg())
        .unwrap()
        .sweep_time
        .as_secs_f64();
    assert!(
        ((p - m) / m).abs() < 0.12,
        "stencil prediction error: predicted {p:.3}s measured {m:.3}s"
    );
}

#[test]
fn deterministic_stencil_predictions() {
    let mut cfg = StencilConfig::new(1024, 8, 4);
    cfg.mode = DataMode::Ghost;
    cfg.synchronized = false;
    let a = predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let b = predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert_eq!(a.report.completion, b.report.completion);
}

#[test]
fn native_runner_executes_the_stencil() {
    // True OS concurrency over the halo-exchange pattern: the asynchronous
    // variant's neighbour messages must not deadlock or corrupt the grid.
    let mut cfg = real_cfg(64, 6, 4);
    cfg.synchronized = false;
    let (app, sh) = stencil_app::build_stencil_app(cfg.clone());
    let r = testbed::run_native(&app, std::time::Duration::from_secs(60));
    assert!(r.terminated, "native stencil run did not terminate");
    let got = sh.result.lock().unwrap().take().expect("grid");
    let reference =
        stencil_app::reference::jacobi(&linalg::Matrix::random(cfg.n, cfg.n, cfg.seed), cfg.iters);
    assert!(linalg::max_abs_diff(&got, &reference) < 1e-12);
}
