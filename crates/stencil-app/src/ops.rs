//! Operation behaviours of the stencil flow graph.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use desim::SimDuration;
use dps::{downcast, DataObj, OpCtx, OpId, Operation, ThreadId};
use linalg::Matrix;
use lu_app::DataMode;
use perfmodel::PlatformProfile;

use crate::config::StencilConfig;
use crate::payload::{
    BandData, BandOut, DriverMsg, Halo, Payload, Start, WorkerCmd, WorkerCmdBody,
};

/// Operation ids of the built graph.
#[derive(Clone, Copy, Debug)]
pub struct StOps {
    /// Initial distribution split op.
    pub init: OpId,
    /// Stencil worker op.
    pub stencil: OpId,
    /// Driver stream op.
    pub driver: OpId,
    /// Verification collector op.
    pub collect: OpId,
}

/// Shared context.
pub struct StShared {
    /// The run's configuration.
    pub cfg: StencilConfig,
    /// Flow-graph operation ids.
    pub ids: StOps,
    /// Final output slot (Real mode).
    pub result: Mutex<Option<Matrix>>,
}

impl StShared {
    /// Whether kernels really execute (Real mode).
    pub fn compute(&self) -> bool {
        self.cfg.mode == DataMode::Real
    }

    /// Builds a block payload in the configured data mode.
    pub fn make_payload(&self, rows: usize, cols: usize, real: impl FnOnce() -> Matrix) -> Payload {
        match self.cfg.mode {
            DataMode::Real => Payload::Real(real()),
            DataMode::Alloc => Payload::alloc(rows, cols),
            DataMode::Ghost => Payload::Ghost { rows, cols },
        }
    }

    /// The Jacobi sweep over an `h × n` band is memory bound on the modeled
    /// machines: ~16 bytes and ~6 flops of traffic per cell.
    pub fn update_cost(&self, h: usize, n: usize) -> Option<SimDuration> {
        self.cfg.cost.map(|p: PlatformProfile| {
            let cells = (h * n) as f64;
            let t_flop = 6.0 * cells / p.trsm_flops_per_sec;
            let t_mem = 16.0 * cells / p.mem_bytes_per_sec;
            p.kernel_overhead + SimDuration::from_secs_f64(t_flop.max(t_mem))
        })
    }

    /// Serialization/copy cost of preparing a message.
    pub fn msg_prep(&self, bytes: u64) -> Option<SimDuration> {
        self.cfg
            .cost
            .map(|p| SimDuration::from_secs_f64(bytes as f64 / p.mem_bytes_per_sec))
    }

    fn charge(&self, ctx: &mut dyn OpCtx, d: Option<SimDuration>) {
        if let Some(d) = d {
            ctx.charge(d);
        }
    }

    /// Whether behaviour state may be deep-copied for simulator
    /// checkpoint/fork. `Real` mode opts out: forks would share the
    /// `result` slot through the `Arc` and clobber each other.
    pub fn forkable(&self) -> bool {
        self.cfg.mode != DataMode::Real
    }
}

/// Expands to the simulator checkpoint/fork hooks inside an
/// `impl Operation` block of a `Clone` behaviour holding `sh: Arc<StShared>`
/// (see [`StShared::forkable`]).
macro_rules! impl_st_fork {
    () => {
        fn fork_op(&self) -> Option<Box<dyn Operation>> {
            self.sh
                .forkable()
                .then(|| Box::new(self.clone()) as Box<dyn Operation>)
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    };
}

// ---------------------------------------------------------------------------

/// The grid distribution split.
#[derive(Clone)]
pub struct InitOp {
    sh: Arc<StShared>,
}

impl InitOp {
    /// Creates an empty instance.
    pub fn new(sh: Arc<StShared>) -> InitOp {
        InitOp { sh }
    }
}

impl Operation for InitOp {
    impl_st_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let _: Start = downcast(obj);
        let sh = &self.sh;
        let (n, w_count) = (sh.cfg.n, sh.cfg.workers as usize);
        let h = sh.cfg.band_rows();
        let workers = ctx.all_threads("workers");
        let grid = if sh.compute() {
            Some(Matrix::random(n, n, sh.cfg.seed))
        } else {
            None
        };
        for (w, &dest) in workers.iter().enumerate().take(w_count) {
            let band = sh.make_payload(h, n, || {
                grid.as_ref().expect("real mode").block(w * h, 0, h, n)
            });
            sh.charge(ctx, sh.msg_prep(band.wire()));
            ctx.post(sh.ids.stencil, Box::new(BandData { w, dest, band }));
        }
    }
}

// ---------------------------------------------------------------------------

/// Per-worker stencil state machine.
#[derive(Clone)]
pub struct StencilOp {
    sh: Arc<StShared>,
    me: ThreadId,
    /// Band index (position within the workers group); resolved lazily.
    w: Option<usize>,
    band: Option<Payload>,
    /// Buffered halo rows keyed by (iteration, from_above).
    halos: HashMap<(usize, bool), Payload>,
    /// Iterations the driver has released (synchronized mode) or the worker
    /// has reached (asynchronous mode).
    ready: usize,
    /// Next iteration to compute.
    next: usize,
}

impl StencilOp {
    /// Creates an empty instance.
    pub fn new(sh: Arc<StShared>, me: ThreadId) -> StencilOp {
        StencilOp {
            sh,
            me,
            w: None,
            band: None,
            halos: HashMap::new(),
            ready: 0,
            next: 0,
        }
    }

    fn w(&mut self, ctx: &mut dyn OpCtx) -> usize {
        *self.w.get_or_insert_with(|| {
            ctx.all_threads("workers")
                .iter()
                .position(|&t| t == self.me)
                .expect("worker thread in group")
        })
    }

    fn needs_above(&self, w: usize) -> bool {
        w > 0
    }

    fn needs_below(&self, w: usize) -> bool {
        w + 1 < self.sh.cfg.workers as usize
    }

    /// Sends this band's boundary rows (current state) feeding iteration
    /// `iter` at the neighbours.
    fn send_halos(&mut self, iter: usize, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let w = self.w(ctx);
        let n = sh.cfg.n;
        let h = sh.cfg.band_rows();
        let band = self.band.as_ref().expect("band stored");
        if self.needs_above(w) {
            let row = sh.make_payload(1, n, || band.matrix().block(0, 0, 1, n));
            self.sh.charge(ctx, self.sh.msg_prep(row.wire()));
            ctx.post(
                sh.ids.stencil,
                Box::new(Halo {
                    iter,
                    to_above: true,
                    row,
                }),
            );
        }
        if self.needs_below(w) {
            let band = self.band.as_ref().expect("band stored");
            let row = sh.make_payload(1, n, || band.matrix().block(h - 1, 0, 1, n));
            self.sh.charge(ctx, self.sh.msg_prep(row.wire()));
            ctx.post(
                sh.ids.stencil,
                Box::new(Halo {
                    iter,
                    to_above: false,
                    row,
                }),
            );
        }
    }

    /// Computes iteration `self.next` if released and all halos are in.
    fn try_compute(&mut self, ctx: &mut dyn OpCtx) {
        loop {
            let k = self.next;
            if k >= self.ready || k >= self.sh.cfg.iters {
                return;
            }
            let w = self.w(ctx);
            let have_above = !self.needs_above(w) || self.halos.contains_key(&(k, true));
            let have_below = !self.needs_below(w) || self.halos.contains_key(&(k, false));
            if !have_above || !have_below {
                return;
            }
            let above = self.halos.remove(&(k, true));
            let below = self.halos.remove(&(k, false));
            self.compute(k, above, below, ctx);
            self.next += 1;
            let sh = self.sh.clone();
            ctx.post(sh.ids.driver, Box::new(DriverMsg::IterDone { w, iter: k }));
            if !sh.cfg.synchronized && self.next < sh.cfg.iters {
                // Asynchronous pipelining: feed the neighbours immediately
                // and release the next iteration locally.
                self.ready = self.next + 1;
                self.send_halos(self.next, ctx);
            }
        }
    }

    /// The 5-point Jacobi sweep on the local band.
    fn compute(
        &mut self,
        _k: usize,
        above: Option<Payload>,
        below: Option<Payload>,
        ctx: &mut dyn OpCtx,
    ) {
        let sh = self.sh.clone();
        let n = sh.cfg.n;
        let h = sh.cfg.band_rows();
        let w = self.w(ctx);
        if sh.compute() {
            let band = self.band.as_mut().expect("band stored").matrix_mut();
            let old = band.clone();
            for i in 0..h {
                let gi = w * h + i;
                if gi == 0 || gi == n - 1 {
                    continue; // fixed grid boundary rows
                }
                for j in 1..n - 1 {
                    let up = if i > 0 {
                        old[(i - 1, j)]
                    } else {
                        above.as_ref().expect("above halo").matrix()[(0, j)]
                    };
                    let down = if i + 1 < h {
                        old[(i + 1, j)]
                    } else {
                        below.as_ref().expect("below halo").matrix()[(0, j)]
                    };
                    band[(i, j)] = 0.25 * (up + down + old[(i, j - 1)] + old[(i, j + 1)]);
                }
            }
        }
        let d = sh.update_cost(h, n);
        sh.charge(ctx, d);
    }
}

impl Operation for StencilOp {
    impl_st_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let any = obj.into_any();
        let any = match any.downcast::<BandData>() {
            Ok(m) => {
                let m = *m;
                ctx.account_state(m.band.heap() as i64);
                self.band = Some(m.band);
                let sh = self.sh.clone();
                ctx.post(sh.ids.driver, Box::new(DriverMsg::BandStored { w: m.w }));
                return;
            }
            Err(a) => a,
        };
        let any = match any.downcast::<WorkerCmd>() {
            Ok(cmd) => {
                match cmd.body {
                    WorkerCmdBody::Go { iter } => {
                        self.ready = self.ready.max(iter + 1);
                        if iter < self.sh.cfg.iters {
                            self.send_halos(iter, ctx);
                        }
                        self.try_compute(ctx);
                    }
                    WorkerCmdBody::Dump => {
                        let sh = self.sh.clone();
                        let w = self.w(ctx);
                        let band = self.band.take().expect("band stored");
                        ctx.account_state(-(band.heap() as i64));
                        sh.charge(ctx, sh.msg_prep(band.wire()));
                        ctx.post(sh.ids.collect, Box::new(BandOut { w, band }));
                    }
                }
                return;
            }
            Err(a) => a,
        };
        match any.downcast::<Halo>() {
            Ok(h) => {
                let h = *h;
                // A halo posted "to_above" arrives at the band above and is
                // that band's *below* halo, and vice versa.
                let from_above = !h.to_above;
                self.halos.insert((h.iter, from_above), h.row);
                self.try_compute(ctx);
            }
            Err(_) => panic!("stencil received unexpected data object"),
        }
    }
}

// ---------------------------------------------------------------------------

/// The iteration driver: collects notifications, enforces barriers in
/// synchronized mode, marks iterations, triggers the dump.
#[derive(Clone)]
pub struct DriverOp {
    sh: Arc<StShared>,
    stored: usize,
    done: HashMap<usize, usize>,
    finished: bool,
}

impl DriverOp {
    /// Creates an empty instance.
    pub fn new(sh: Arc<StShared>) -> DriverOp {
        DriverOp {
            sh,
            stored: 0,
            done: HashMap::new(),
            finished: false,
        }
    }

    fn broadcast_go(&self, iter: usize, ctx: &mut dyn OpCtx) {
        let sh = &self.sh;
        for t in ctx.all_threads("workers") {
            ctx.post(
                sh.ids.stencil,
                Box::new(WorkerCmd {
                    dest: t,
                    body: WorkerCmdBody::Go { iter },
                }),
            );
        }
    }

    fn finish(&mut self, ctx: &mut dyn OpCtx) {
        self.finished = true;
        if self.sh.cfg.mode == DataMode::Real {
            let sh = self.sh.clone();
            for t in ctx.all_threads("workers") {
                ctx.post(
                    sh.ids.stencil,
                    Box::new(WorkerCmd {
                        dest: t,
                        body: WorkerCmdBody::Dump,
                    }),
                );
            }
        } else {
            ctx.terminate();
        }
    }

    fn on_done(&mut self, iter: usize, ctx: &mut dyn OpCtx) {
        let w_count = self.sh.cfg.workers as usize;
        let c = self.done.entry(iter).or_insert(0);
        *c += 1;
        if *c < w_count {
            return;
        }
        ctx.mark(&format!("iter:{}", iter + 1));
        if iter + 1 == self.sh.cfg.iters {
            self.finish(ctx);
        } else if self.sh.cfg.synchronized {
            self.broadcast_go(iter + 1, ctx);
        }
    }
}

impl Operation for DriverOp {
    impl_st_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let m: DriverMsg = downcast(obj);
        match m {
            DriverMsg::BandStored { .. } => {
                self.stored += 1;
                if self.stored == self.sh.cfg.workers as usize {
                    ctx.mark("dist");
                    self.broadcast_go(0, ctx);
                }
            }
            DriverMsg::IterDone { iter, .. } => self.on_done(iter, ctx),
        }
    }
}

// ---------------------------------------------------------------------------

/// Verification collector: assembles the final grid.
#[derive(Clone)]
pub struct CollectOp {
    sh: Arc<StShared>,
    acc: Option<Matrix>,
    got: usize,
}

impl CollectOp {
    /// Creates an empty instance.
    pub fn new(sh: Arc<StShared>) -> CollectOp {
        CollectOp {
            sh,
            acc: None,
            got: 0,
        }
    }
}

impl Operation for CollectOp {
    impl_st_fork!();
    fn on_object(&mut self, obj: DataObj, ctx: &mut dyn OpCtx) {
        let sh = self.sh.clone();
        let n = sh.cfg.n;
        let h = sh.cfg.band_rows();
        let m: BandOut = downcast(obj);
        let acc = self.acc.get_or_insert_with(|| Matrix::zeros(n, n));
        acc.set_block(m.w * h, 0, m.band.matrix());
        self.got += 1;
        if self.got == sh.cfg.workers as usize {
            *sh.result.lock().expect("result lock") = self.acc.take();
            ctx.terminate();
        }
    }
}
