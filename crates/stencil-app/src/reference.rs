//! Sequential Jacobi reference for verification.

use linalg::Matrix;

/// One Jacobi sweep: interior cells become the average of their four
/// neighbours; boundary cells are fixed (Dirichlet).
pub fn jacobi_step(g: &Matrix) -> Matrix {
    let n = g.rows();
    let mut out = g.clone();
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            out[(i, j)] = 0.25 * (g[(i - 1, j)] + g[(i + 1, j)] + g[(i, j - 1)] + g[(i, j + 1)]);
        }
    }
    out
}

/// `iters` Jacobi sweeps.
pub fn jacobi(g: &Matrix, iters: usize) -> Matrix {
    let mut cur = g.clone();
    for _ in 0..iters {
        cur = jacobi_step(&cur);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_stays_fixed() {
        let g = Matrix::random(8, 8, 1);
        let s = jacobi(&g, 5);
        for k in 0..8 {
            assert_eq!(s[(0, k)], g[(0, k)]);
            assert_eq!(s[(7, k)], g[(7, k)]);
            assert_eq!(s[(k, 0)], g[(k, 0)]);
            assert_eq!(s[(k, 7)], g[(k, 7)]);
        }
    }

    #[test]
    fn uniform_grid_is_a_fixed_point() {
        let g = Matrix::from_fn(6, 6, |_, _| 3.5);
        let s = jacobi(&g, 10);
        assert!(linalg::max_abs_diff(&g, &s) < 1e-12);
    }

    #[test]
    fn diffusion_smooths_a_spike() {
        let mut g = Matrix::zeros(16, 16);
        g[(8, 8)] = 100.0;
        let s = jacobi(&g, 3);
        assert!(s[(8, 8)] < 100.0);
        assert!(s[(8, 9)] > 0.0);
        assert!(s[(5, 5)] >= 0.0);
    }
}
