//! Running the stencil on the simulator or testbed, with verification.

use desim::SimDuration;
use dps_sim::{RunReport, SimConfig, SimError, SimResult};
use linalg::{max_abs_diff, Matrix};
use lu_app::DataMode;
use netmodel::NetParams;
use testbed::TestbedParams;

use crate::builder::build_stencil_app;
use crate::config::StencilConfig;
use crate::reference::jacobi;

/// Outcome of one stencil run.
pub struct StencilRun {
    /// The engine's run report.
    pub report: RunReport,
    /// Sweep time: completion minus the distribution mark.
    pub sweep_time: SimDuration,
    /// Max abs deviation from the sequential Jacobi reference (Real mode).
    pub error: Option<f64>,
}

fn finish(
    cfg: &StencilConfig,
    sh: &crate::ops::StShared,
    report: RunReport,
) -> SimResult<StencilRun> {
    if !report.terminated {
        return Err(SimError::protocol(
            "stencil run went quiescent without terminating",
        ));
    }
    let dist = report
        .mark_time("dist")
        .ok_or_else(|| SimError::protocol("stencil run recorded no 'dist' mark"))?;
    let final_mark = format!("iter:{}", cfg.iters);
    let end = report.mark_time(&final_mark).ok_or_else(|| {
        SimError::protocol(format!("stencil run recorded no '{final_mark}' mark"))
    })?;
    let error = if cfg.mode == DataMode::Real {
        let got = sh
            .result
            .lock()
            .expect("result lock")
            .take()
            .ok_or_else(|| SimError::protocol("Real mode run produced no grid"))?;
        let reference = jacobi(&Matrix::random(cfg.n, cfg.n, cfg.seed), cfg.iters);
        Some(max_abs_diff(&got, &reference))
    } else {
        None
    };
    Ok(StencilRun {
        sweep_time: end - dist,
        report,
        error,
    })
}

/// One-line context for errors surfacing from a stencil run.
fn st_context(cfg: &StencilConfig) -> String {
    format!(
        "running stencil n={} iters={} on {} nodes",
        cfg.n, cfg.iters, cfg.nodes
    )
}

/// Predicts the run on the simulator.
pub fn predict_stencil(
    cfg: &StencilConfig,
    net: NetParams,
    simcfg: &SimConfig,
) -> SimResult<StencilRun> {
    let (app, sh) = build_stencil_app(cfg.clone());
    let report = dps_sim::simulate(&app, net, simcfg).map_err(|e| e.context(st_context(cfg)))?;
    finish(cfg, &sh, report).map_err(|e| e.context(st_context(cfg)))
}

/// A pausable/forkable stencil prediction run (see
/// `dps_sim::SimCheckpoint`). Only prediction modes fork — `Real` mode
/// behaviours opt out of cloning and [`StencilCheckpoint::fork`] fails with
/// `ForkRefused`.
pub struct StencilCheckpoint {
    ck: dps_sim::SimCheckpoint,
    cfg: StencilConfig,
    sh: std::sync::Arc<crate::ops::StShared>,
}

impl StencilCheckpoint {
    /// Builds the application and pauses it at virtual time zero.
    pub fn start(
        cfg: &StencilConfig,
        net: NetParams,
        simcfg: &SimConfig,
    ) -> SimResult<StencilCheckpoint> {
        let (app, sh) = build_stencil_app(cfg.clone());
        Ok(StencilCheckpoint {
            ck: dps_sim::simulate_until(
                std::sync::Arc::new(app),
                net,
                simcfg,
                desim::SimTime::ZERO,
            )
            .map_err(|e| e.context(st_context(cfg)))?,
            cfg: cfg.clone(),
            sh,
        })
    }

    /// Advances until the next event would pass `t`.
    pub fn advance_until(&mut self, t: desim::SimTime) -> SimResult<bool> {
        self.ck.advance_until(t)
    }

    /// Current virtual time.
    pub fn now(&self) -> desim::SimTime {
        self.ck.now()
    }

    /// An independent copy of the paused run; fails with `ForkRefused` when
    /// the configuration cannot fork (Real mode).
    pub fn fork(&mut self) -> SimResult<StencilCheckpoint> {
        Ok(StencilCheckpoint {
            ck: self.ck.fork()?,
            cfg: self.cfg.clone(),
            sh: std::sync::Arc::clone(&self.sh),
        })
    }

    /// Runs to completion and extracts the run's quantities.
    pub fn finish(self) -> SimResult<StencilRun> {
        let ctx = st_context(&self.cfg);
        let report = self.ck.finish().map_err(|e| e.context(ctx.clone()))?;
        finish(&self.cfg, &self.sh, report).map_err(|e| e.context(ctx))
    }
}

/// Predicts the run against an arbitrary machine model (e.g. a
/// `dps_sim::FaultFabric` with injected slowdowns and link degradations).
pub fn predict_stencil_with_fabric(
    cfg: &StencilConfig,
    fabric: &mut dyn dps_sim::Fabric,
    simcfg: &SimConfig,
) -> SimResult<StencilRun> {
    let (app, sh) = build_stencil_app(cfg.clone());
    let report = dps_sim::simulate_with_fabric(&app, fabric, simcfg)
        .map_err(|e| e.context(st_context(cfg)))?;
    finish(cfg, &sh, report).map_err(|e| e.context(st_context(cfg)))
}

/// "Measures" the run on the testbed emulator.
pub fn measure_stencil(
    cfg: &StencilConfig,
    tb: TestbedParams,
    seed: u64,
    simcfg: &SimConfig,
) -> SimResult<StencilRun> {
    let (app, sh) = build_stencil_app(cfg.clone());
    let report =
        testbed::measure(&app, tb, seed, simcfg).map_err(|e| e.context(st_context(cfg)))?;
    finish(cfg, &sh, report).map_err(|e| e.context(st_context(cfg)))
}
