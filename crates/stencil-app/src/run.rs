//! Running the stencil on the simulator or testbed, with verification.

use desim::SimDuration;
use dps_sim::{RunReport, SimConfig};
use linalg::{max_abs_diff, Matrix};
use lu_app::DataMode;
use netmodel::NetParams;
use testbed::TestbedParams;

use crate::builder::build_stencil_app;
use crate::config::StencilConfig;
use crate::reference::jacobi;

/// Outcome of one stencil run.
pub struct StencilRun {
    /// The engine's run report.
    pub report: RunReport,
    /// Sweep time: completion minus the distribution mark.
    pub sweep_time: SimDuration,
    /// Max abs deviation from the sequential Jacobi reference (Real mode).
    pub error: Option<f64>,
}

fn finish(cfg: &StencilConfig, sh: &crate::ops::StShared, report: RunReport) -> StencilRun {
    assert!(
        report.terminated,
        "stencil run did not terminate: {:?}",
        report.stall
    );
    let dist = report.mark_time("dist").expect("distribution mark");
    let end = report
        .mark_time(&format!("iter:{}", cfg.iters))
        .expect("final iteration mark");
    let error = if cfg.mode == DataMode::Real {
        let got = sh
            .result
            .lock()
            .expect("result lock")
            .take()
            .expect("Real mode produces a grid");
        let reference = jacobi(&Matrix::random(cfg.n, cfg.n, cfg.seed), cfg.iters);
        Some(max_abs_diff(&got, &reference))
    } else {
        None
    };
    StencilRun {
        sweep_time: end - dist,
        report,
        error,
    }
}

/// Predicts the run on the simulator.
pub fn predict_stencil(cfg: &StencilConfig, net: NetParams, simcfg: &SimConfig) -> StencilRun {
    let (app, sh) = build_stencil_app(cfg.clone());
    let report = dps_sim::simulate(&app, net, simcfg);
    finish(cfg, &sh, report)
}

/// A pausable/forkable stencil prediction run (see
/// `dps_sim::SimCheckpoint`). Only prediction modes fork — `Real` mode
/// behaviours opt out of cloning and [`StencilCheckpoint::fork`] returns
/// `None`.
pub struct StencilCheckpoint {
    ck: dps_sim::SimCheckpoint,
    cfg: StencilConfig,
    sh: std::sync::Arc<crate::ops::StShared>,
}

impl StencilCheckpoint {
    /// Builds the application and pauses it at virtual time zero.
    pub fn start(cfg: &StencilConfig, net: NetParams, simcfg: &SimConfig) -> StencilCheckpoint {
        let (app, sh) = build_stencil_app(cfg.clone());
        StencilCheckpoint {
            ck: dps_sim::simulate_until(
                std::sync::Arc::new(app),
                net,
                simcfg,
                desim::SimTime::ZERO,
            ),
            cfg: cfg.clone(),
            sh,
        }
    }

    /// Advances until the next event would pass `t`.
    pub fn advance_until(&mut self, t: desim::SimTime) -> bool {
        self.ck.advance_until(t)
    }

    /// Current virtual time.
    pub fn now(&self) -> desim::SimTime {
        self.ck.now()
    }

    /// An independent copy of the paused run, or `None` when the
    /// configuration cannot fork (Real mode).
    pub fn fork(&mut self) -> Option<StencilCheckpoint> {
        Some(StencilCheckpoint {
            ck: self.ck.fork()?,
            cfg: self.cfg.clone(),
            sh: std::sync::Arc::clone(&self.sh),
        })
    }

    /// Runs to completion and extracts the run's quantities.
    pub fn finish(self) -> StencilRun {
        finish(&self.cfg, &self.sh, self.ck.finish())
    }
}

/// Predicts the run against an arbitrary machine model (e.g. a
/// `dps_sim::FaultFabric` with injected slowdowns and link degradations).
pub fn predict_stencil_with_fabric(
    cfg: &StencilConfig,
    fabric: &mut dyn dps_sim::Fabric,
    simcfg: &SimConfig,
) -> StencilRun {
    let (app, sh) = build_stencil_app(cfg.clone());
    let report = dps_sim::simulate_with_fabric(&app, fabric, simcfg);
    finish(cfg, &sh, report)
}

/// "Measures" the run on the testbed emulator.
pub fn measure_stencil(
    cfg: &StencilConfig,
    tb: TestbedParams,
    seed: u64,
    simcfg: &SimConfig,
) -> StencilRun {
    let (app, sh) = build_stencil_app(cfg.clone());
    let report = testbed::measure(&app, tb, seed, simcfg);
    finish(cfg, &sh, report)
}
