//! Stencil configuration.

use lu_app::DataMode;
use perfmodel::PlatformProfile;

/// Configuration of one Jacobi run.
#[derive(Clone)]
pub struct StencilConfig {
    /// Grid order (N × N).
    pub n: usize,
    /// Jacobi iterations.
    pub iters: usize,
    /// Compute nodes; one worker (band) per node times `workers_per_node`.
    pub nodes: u32,
    /// Worker threads (= bands); thread t on node t % nodes.
    pub workers: u32,
    /// Barrier between iterations (synchronized) or free-running halos
    /// (asynchronous pipelining).
    pub synchronized: bool,
    /// Payload mode (shared with the LU app: Real / Alloc / Ghost).
    pub mode: DataMode,
    /// Kernel cost model for PDEXEC charges; `None` = direct execution.
    pub cost: Option<PlatformProfile>,
    /// Input seed.
    pub seed: u64,
}

impl StencilConfig {
    /// Creates an empty instance.
    pub fn new(n: usize, iters: usize, nodes: u32) -> StencilConfig {
        StencilConfig {
            n,
            iters,
            nodes,
            workers: nodes,
            synchronized: true,
            mode: DataMode::Ghost,
            cost: Some(PlatformProfile::ultrasparc_ii_440()),
            seed: 7,
        }
    }

    /// Rows per band.
    pub fn band_rows(&self) -> usize {
        self.n / self.workers as usize
    }

    /// Checks divisibility and worker-count consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 || self.nodes == 0 || self.workers < self.nodes {
            return Err("need at least one worker per node".into());
        }
        if self.n == 0 || !self.n.is_multiple_of(self.workers as usize) {
            return Err(format!(
                "grid order {} must divide evenly into {} bands",
                self.n, self.workers
            ));
        }
        if self.band_rows() < 1 {
            return Err("bands must be at least one row tall".into());
        }
        if self.iters == 0 {
            return Err("need at least one iteration".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = StencilConfig::new(512, 10, 8);
        c.validate().unwrap();
        assert_eq!(c.band_rows(), 64);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(StencilConfig::new(100, 10, 8).validate().is_err()); // 100 % 8 != 0
        assert!(StencilConfig::new(512, 0, 8).validate().is_err());
        let mut c = StencilConfig::new(512, 4, 8);
        c.workers = 4;
        assert!(c.validate().is_err()); // fewer workers than nodes
    }
}
