//! Data objects of the stencil flow graph. The matrix payload type is
//! shared with the LU application (`lu_app::Payload`) — both carry dense
//! blocks in Real/Alloc/Ghost modes.

use dps::{DataObject, ThreadId};
pub use lu_app::Payload;

/// Fixed per-message envelope.
pub const MSG_HEADER: u64 = 16;

/// Kick-off token.
#[derive(Clone)]
pub struct Start;

/// A band of the grid heading to its worker.
#[derive(Clone)]
pub struct BandData {
    /// Band / worker index.
    pub w: usize,
    /// Destination thread (resolved by the `by_target` router).
    pub dest: ThreadId,
    /// The band payload.
    pub band: Payload,
}

/// Commands from the driver to workers.
#[derive(Clone)]
pub enum WorkerCmdBody {
    /// Start iteration `iter` (exchange halos, then update).
    Go {
        /// Iteration to run.
        iter: usize,
    },
    /// Send the band to the collector (verification).
    Dump,
}

/// A routed driver command (see [`WorkerCmdBody`]).
#[derive(Clone)]
pub struct WorkerCmd {
    /// Destination thread (resolved by the `by_target` router).
    pub dest: ThreadId,
    /// The request body.
    pub body: WorkerCmdBody,
}

/// A halo row travelling to a neighbour band. `to_above` selects the
/// neighbour (relative thread index −1 or +1); the edge router derives the
/// destination from the posting thread.
#[derive(Clone)]
pub struct Halo {
    /// Iteration index.
    pub iter: usize,
    /// Whether the halo heads to the band above (relative -1).
    pub to_above: bool,
    /// The halo row payload.
    pub row: Payload,
}

/// Notifications from workers to the driver.
#[derive(Clone)]
pub enum DriverMsg {
    /// A band was stored at its worker.
    BandStored {
        /// Band index.
        w: usize,
    },
    /// A worker finished one iteration.
    IterDone {
        /// Band index.
        w: usize,
        /// Finished iteration.
        iter: usize,
    },
}

/// A finished band for the collector.
#[derive(Clone)]
pub struct BandOut {
    /// Band / worker index.
    pub w: usize,
    /// The band payload.
    pub band: Payload,
}

impl DataObject for Start {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER
    }
}

impl DataObject for BandData {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + self.band.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.band.heap()
    }
}

impl DataObject for WorkerCmd {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 8
    }
}

impl DataObject for Halo {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 9 + self.row.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.row.heap()
    }
}

impl DataObject for DriverMsg {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + 16
    }
}

impl DataObject for BandOut {
    dps::impl_obj_clone!();
    fn wire_size(&self) -> u64 {
        MSG_HEADER + self.band.wire()
    }
    fn heap_bytes(&self) -> u64 {
        self.band.heap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_wire_size_scales_with_row() {
        let h = Halo {
            iter: 0,
            to_above: true,
            row: Payload::Ghost { rows: 1, cols: 512 },
        };
        assert_eq!(DataObject::wire_size(&h), MSG_HEADER + 9 + 8 + 512 * 8);
        assert_eq!(DataObject::heap_bytes(&h), 0);
    }

    #[test]
    fn band_heap_follows_mode() {
        let real = BandData {
            w: 0,
            dest: ThreadId(0),
            band: Payload::alloc(64, 512),
        };
        assert!(DataObject::heap_bytes(&real) >= 64 * 512 * 8);
    }
}
