//! Assembles the stencil [`dps::Application`].

use std::sync::{Arc, Mutex};

use dps::{by_target, downcast_ref, to_thread, AppBuilder, Application, OpKind, Router};

use crate::config::StencilConfig;
use crate::ops::{CollectOp, DriverOp, InitOp, StOps, StShared, StencilOp};
use crate::payload::{BandData, Halo, Start, WorkerCmd};

/// Halo routing by relative thread index: `to_above` selects the group
/// neighbour at offset −1, otherwise +1 (the paper's neighborhood-exchange
/// pattern).
fn halo_router(group: &str) -> Router {
    let group = group.to_string();
    Box::new(move |obj, ctx| {
        let h: &Halo = downcast_ref(obj);
        let all = ctx.group_all(&group);
        let me = all
            .iter()
            .position(|&t| t == ctx.src_thread)
            .expect("posting thread in group");
        let idx = if h.to_above {
            me.checked_sub(1).expect("no neighbour above")
        } else {
            me + 1
        };
        all[idx]
    })
}

/// Builds the application; the shared handle exposes the verification grid.
pub fn build_stencil_app(cfg: StencilConfig) -> (Application, Arc<StShared>) {
    cfg.validate().expect("invalid stencil configuration");
    let mut b = AppBuilder::new("jacobi-stencil");
    let nodes: Vec<u32> = (0..cfg.workers).map(|t| t % cfg.nodes).collect();
    b.thread_group_on_nodes("workers", &nodes);
    let main = b.thread_on_node("main", 0);

    let init = b.declare("init", OpKind::Split);
    let stencil = b.declare("stencil", OpKind::Leaf);
    let driver = b.declare("driver", OpKind::Stream);
    let collect = b.declare("collect", OpKind::Merge);

    let sh = Arc::new(StShared {
        cfg: cfg.clone(),
        ids: StOps {
            init,
            stencil,
            driver,
            collect,
        },
        result: Mutex::new(None),
    });

    {
        let sh = sh.clone();
        b.body(init, move |_, _| Box::new(InitOp::new(sh.clone())));
    }
    {
        let sh = sh.clone();
        b.body(stencil, move |_, t| Box::new(StencilOp::new(sh.clone(), t)));
    }
    {
        let sh = sh.clone();
        b.body(driver, move |_, _| Box::new(DriverOp::new(sh.clone())));
    }
    {
        let sh = sh.clone();
        b.body(collect, move |_, _| Box::new(CollectOp::new(sh.clone())));
    }

    b.edge(init, stencil, by_target(|m: &BandData| m.dest));
    b.edge(driver, stencil, by_target(|m: &WorkerCmd| m.dest));
    b.edge(stencil, stencil, halo_router("workers"));
    b.edge(stencil, driver, to_thread(main));
    b.edge(stencil, collect, to_thread(main));
    b.start(init, main, || Box::new(Start));

    let app = b.build().expect("stencil application assembles");
    (app, sh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_assembles() {
        let (app, sh) = build_stencil_app(StencilConfig::new(256, 4, 4));
        assert_eq!(app.graph().op_count(), 4);
        assert_eq!(app.deployment().thread_count(), 5);
        assert_eq!(sh.cfg.band_rows(), 64);
    }

    #[test]
    #[should_panic(expected = "invalid stencil configuration")]
    fn invalid_config_panics() {
        build_stencil_app(StencilConfig::new(100, 4, 8));
    }
}
