//! Jacobi heat-diffusion stencil as a DPS application.
//!
//! A second evaluation workload beside the LU factorization, exercising the
//! DPS feature the paper highlights for neighborhood communication:
//! "communication patterns such as neighborhood exchanges can easily be
//! specified by using relative thread indices" (§2). The `N × N` grid is
//! decomposed into horizontal bands, one per worker; every iteration each
//! worker exchanges halo rows with its neighbours (edges routed with
//! [`dps::relative`]) and applies the 5-point Jacobi update.
//!
//! Two flow-graph variants mirror the paper's basic/pipelined distinction:
//!
//! * **synchronized** — a driver barrier between iterations (merge/split
//!   pair);
//! * **asynchronous** — workers advance as soon as their own halos arrive,
//!   so loosely coupled bands drift apart (stream-style pipelining).
//!
//! The stencil's dynamic efficiency is *flat* across iterations — the
//! counterpoint to LU's decay: the removal policy of `cluster` correctly
//! recommends releasing nodes for LU and keeping them for the stencil.

#![warn(missing_docs)]

pub mod builder;
pub mod config;
pub mod ops;
pub mod payload;
pub mod reference;
pub mod run;

pub use builder::build_stencil_app;
pub use config::StencilConfig;
pub use run::{
    measure_stencil, predict_stencil, predict_stencil_with_fabric, StencilCheckpoint, StencilRun,
};
