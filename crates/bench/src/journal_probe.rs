//! Reference-run journal capture and self-contained replay: the plumbing
//! behind `scenarios --journal` and `perf --replay`.
//!
//! `scenarios --journal` records the committed-event journal of a
//! reference LU run (the Figure 8 reference configuration, smoke-sized
//! under `DVNS_SMOKE=1`), cross-checks the serial stream against a
//! parallel-engine run with the divergence pinpointer, and writes the
//! encoded stream to `results/lu_reference.journal`. The file is
//! self-contained: the application configuration, root seed and a digest
//! of the canonical report ride along as journal metadata, so
//! `perf --replay <path>` can rebuild the exact run in a later process,
//! resume it from several prefixes, and byte-compare — reporting the
//! first diverging event (ticket, virtual time, op, field) on any
//! mismatch instead of a whole-file diff.

use std::hash::Hasher;
use std::path::{Path, PathBuf};

use desim::fxhash::FxHasher;
use dps_sim::{check_equivalent, replay, Journal};
use lu_app::{build_lu_app, LuConfig};

use crate::Env;

/// Where `scenarios --journal` writes the reference journal and where
/// `perf --replay` looks without an explicit path.
pub fn default_journal_path() -> PathBuf {
    PathBuf::from("results").join("lu_reference.journal")
}

/// Hex digest of a canonical report rendering, stored in the journal
/// metadata so a replay in a later process can byte-compare without
/// shipping the full report text.
fn canonical_digest(canonical: &str) -> String {
    let mut h = FxHasher::default();
    h.write(canonical.as_bytes());
    format!("{:016x}", h.finish())
}

/// The recorded reference configuration: Figure 8's reference point
/// (r = 648 on 4 nodes at the paper's matrix order), shrunk to a
/// CI-sized instance in smoke mode.
fn reference_cfg(env: &Env, smoke: bool) -> LuConfig {
    if smoke {
        env.lu_sized(432, 36, 4)
    } else {
        env.lu(648, 4)
    }
}

/// What [`record_reference_journal`] produced.
pub struct JournalProbe {
    /// Committed events in the recorded stream.
    pub events: usize,
    /// Engine thread count the serial stream was cross-checked against.
    pub cross_threads: usize,
    /// Digest of the canonical report (also stored in the journal).
    pub digest: String,
}

/// Runs the reference configuration journaled at `engine_threads` 1 and
/// `cross_threads`, pinpoint-checks serial ≡ parallel, and writes the
/// serial stream (plus replay metadata) to `path`.
pub fn record_reference_journal(
    seed: u64,
    smoke: bool,
    cross_threads: usize,
    path: &Path,
) -> Result<JournalProbe, String> {
    let journaled_env = |threads: usize| {
        let mut env = Env::paper_seeded(seed).with_engine_threads(threads);
        env.simcfg.record_journal = true;
        env
    };
    let env = journaled_env(1);
    let cfg = reference_cfg(&env, smoke);
    let serial = env
        .predict(&cfg)
        .map_err(|e| format!("serial reference run failed: {e}"))?
        .report;
    let parallel = journaled_env(cross_threads)
        .predict(&cfg)
        .map_err(|e| format!("parallel reference run failed: {e}"))?
        .report;
    check_equivalent(&parallel, &serial)
        .map_err(|d| format!("serial \u{2262} parallel at engine_threads={cross_threads}: {d}"))?;

    let digest = canonical_digest(&serial.canonical_string());
    let mut journal = serial.journal.expect("record_journal was set");
    journal.set_meta("app", "lu");
    journal.set_meta("n", cfg.n.to_string());
    journal.set_meta("r", cfg.r.to_string());
    journal.set_meta("nodes", cfg.nodes.to_string());
    journal.set_meta("seed", seed.to_string());
    journal.set_meta("canonical_fxhash", digest.clone());
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, journal.encode())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(JournalProbe {
        events: journal.len(),
        cross_threads,
        digest,
    })
}

/// What [`replay_journal_file`] verified.
#[derive(Debug)]
pub struct JournalReplay {
    /// Committed events in the recorded stream.
    pub events: usize,
    /// Prefix lengths replay resumed from (each byte-identical).
    pub prefixes: Vec<usize>,
    /// Engine thread count the replays ran at.
    pub threads: usize,
}

/// Decodes a journal written by [`record_reference_journal`], rebuilds
/// the run from its metadata, and replays it from an empty, a midpoint
/// and a full prefix at `threads` engine threads. Every replay must
/// re-emit the recorded stream event-for-event and reproduce the recorded
/// canonical digest; the error pinpoints the first diverging event
/// otherwise.
pub fn replay_journal_file(path: &Path, threads: usize) -> Result<JournalReplay, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let recorded =
        Journal::decode(&bytes).map_err(|e| format!("cannot decode {}: {e}", path.display()))?;
    let meta = |key: &str| {
        recorded
            .meta_get(key)
            .map(str::to_string)
            .ok_or_else(|| format!("journal {} lacks metadata `{key}`", path.display()))
    };
    let app_kind = meta("app")?;
    if app_kind != "lu" {
        return Err(format!(
            "journal records a `{app_kind}` run; only `lu` replays here"
        ));
    }
    let parse = |key: &str| -> Result<u64, String> {
        meta(key)?
            .parse::<u64>()
            .map_err(|e| format!("journal metadata `{key}` is not a number: {e}"))
    };
    let (n, r, nodes) = (
        parse("n")? as usize,
        parse("r")? as usize,
        parse("nodes")? as u32,
    );
    let seed = parse("seed")?;
    let digest = meta("canonical_fxhash")?;

    let mut env = Env::paper_seeded(seed).with_engine_threads(threads);
    env.simcfg.record_journal = true;
    let cfg = env.lu_sized(n, r, nodes);
    let (app, _shared) = build_lu_app(cfg);

    let prefixes = vec![0, recorded.len() / 2, recorded.len()];
    for &prefix in &prefixes {
        let out = replay(&app, env.net, &env.simcfg, &recorded, prefix)
            .map_err(|e| format!("replay from prefix {prefix} failed: {e}"))?;
        if let Some(d) = out.divergence {
            return Err(format!("replay from prefix {prefix} diverged: {d}"));
        }
        let got = canonical_digest(&out.report.canonical_string());
        if got != digest {
            return Err(format!(
                "replay from prefix {prefix}: canonical digest {got} != recorded {digest}"
            ));
        }
    }
    Ok(JournalReplay {
        events: recorded.len(),
        prefixes,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Record → replay round trip through an actual file, smoke-sized:
    /// the contract the CI journal smoke exercises across two processes.
    #[test]
    fn recorded_reference_journal_replays_from_disk() {
        let path =
            std::env::temp_dir().join(format!("dvns-journal-probe-{}.journal", std::process::id()));
        let probe = record_reference_journal(42, true, 2, &path).unwrap();
        assert!(probe.events > 0);
        let replayed = replay_journal_file(&path, 2).unwrap();
        assert_eq!(replayed.events, probe.events);
        assert_eq!(replayed.prefixes.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_rejects_a_truncated_file() {
        let path =
            std::env::temp_dir().join(format!("dvns-journal-trunc-{}.journal", std::process::id()));
        std::fs::write(&path, b"DVNSJ1\n").unwrap();
        let err = replay_journal_file(&path, 1).unwrap_err();
        assert!(err.contains("cannot decode"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
