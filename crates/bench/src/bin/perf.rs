//! Engine performance benchmark: the end-to-end LU simulation throughput
//! measurement (events-processed-per-second) recorded into
//! `results/BENCH_engine.json` so that every PR leaves a perf trajectory.
//!
//! The headline workload is the paper's Table 1 PDEXEC setting: a 2592²
//! matrix in twelve 216-column blocks on 8 nodes, simulated with ghost
//! payloads (NOALLOC). `DVNS_SMOKE=1` shrinks the matrix for CI.
//!
//! `--scaling` instead sweeps the parallel engine core's thread count
//! (`SimConfig::engine_threads` ∈ {1, 2, 4, 8}) over the headline instance
//! and a ~10× larger one, appending per-thread-count throughput and peak-RSS
//! rows to the same JSON in one invocation. Every scaling row carries the
//! host's core count and an `oversubscribed` flag, so rows measured with
//! more engine threads than cores (≈0.5–0.7× serial is *expected* there)
//! are machine-readably distinguishable from real speedup rows.
//!
//! `--replay [path]` instead verifies a journal recorded by
//! `scenarios --journal` (default `results/lu_reference.journal`): the run
//! is rebuilt from the journal's own metadata, resumed from an empty, a
//! midpoint and a full prefix, and every replay must re-emit the recorded
//! event stream and canonical digest byte-for-byte. A mismatch exits
//! non-zero naming the first diverging event.

use dps_bench::harness::{peak_rss_bytes, smoke, thread_count, BenchJson};
use dps_bench::{default_journal_path, replay_journal_file, Env, N};
use lu_app::LuConfig;

/// Engine thread counts the `--scaling` sweep measures.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

fn batch_samples(default_batch: u32, default_samples: u32) -> (u32, u32) {
    let batch = std::env::var("DVNS_PERF_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_batch);
    let samples = std::env::var("DVNS_PERF_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_samples);
    (batch, samples)
}

/// Best-of-`samples` sum-of-`batch` engine-internal wall time of predicted
/// runs of `cfg` under `env`, as `(total steps, secs)` of the best batch.
fn sample_predict(env: &Env, cfg: &LuConfig, batch: u32, samples: u32) -> (u64, f64) {
    let _ = env.predict(cfg); // warmup: page in code + allocator
    let mut best_secs = f64::INFINITY;
    let mut steps = 0u64;
    for _ in 0..samples {
        let mut batch_secs = 0.0;
        let mut batch_steps = 0u64;
        for _ in 0..batch {
            let run = env
                .predict(cfg)
                .unwrap_or_else(|e| panic!("predicted run failed: {e}"));
            batch_secs += run.report.host_wall.as_secs_f64();
            batch_steps += run.report.steps;
        }
        if batch_secs < best_secs {
            best_secs = batch_secs;
            steps = batch_steps;
        }
    }
    (steps, best_secs)
}

/// The engine-threads scaling sweep (`--scaling`): events/s at each thread
/// count, on the headline instance and a ~10× larger one.
fn scaling(json: &mut BenchJson) {
    // (n, r, batch, samples): the reference Table 1 instance and a ~10×
    // larger one (3× the blocks — triple-digit seconds serial on the paper's
    // hardware class), sampled more lightly.
    let instances: &[(usize, usize, u32, u32)] = if smoke() {
        &[(432, 36, 2, 2), (864, 72, 1, 2)]
    } else {
        &[(N, 216, 5, 3), (3 * N, 216, 1, 2)]
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for &(n, r, default_batch, default_samples) in instances {
        let (batch, samples) = batch_samples(default_batch, default_samples);
        let mut eps_t1 = f64::NAN;
        for t in SCALING_THREADS {
            let env = Env::paper().with_engine_threads(t);
            let mut cfg = env.lu(r, 8);
            cfg.n = n;
            let (steps, secs) = sample_predict(&env, &cfg, batch, samples);
            let eps = steps as f64 / secs;
            if t == 1 {
                eps_t1 = eps;
            }
            let speedup = eps / eps_t1;
            let rss = peak_rss_bytes().unwrap_or(0);
            let oversubscribed = t > host_cores;
            println!(
                "lu_scaling n={n} r={r} 8 nodes t={t}: {steps} steps in {secs:.3}s host \
                 = {eps:.0} events/sec ({speedup:.2}x vs t=1{})",
                if oversubscribed {
                    ", oversubscribed"
                } else {
                    ""
                }
            );
            json.record(
                &format!("lu_scaling_{n}_r{r}_8n_t{t}"),
                &[
                    ("n", n as f64),
                    ("r", r as f64),
                    ("engine_threads", t as f64),
                    ("steps", steps as f64),
                    ("host_wall_secs", secs),
                    ("events_per_sec", eps),
                    ("speedup_vs_t1", speedup),
                    ("peak_rss_bytes", rss as f64),
                    ("host_cores", host_cores as f64),
                    ("oversubscribed", f64::from(u8::from(oversubscribed))),
                ],
            );
        }
    }
}

/// The default throughput benchmarks: simulator and testbed events/s on the
/// headline instance.
fn throughput(json: &mut BenchJson) {
    let env = Env::paper();
    let n = if smoke() { 432 } else { N };
    let r = n / 12;
    // A single 2592² run lasts only tens of milliseconds of host time, so
    // a lone wall-clock sample swings wildly on a shared host. Each sample
    // therefore sums the engine-internal wall of `batch` consecutive runs,
    // and we keep the best of `samples` batches.
    let (batch, samples) = batch_samples(10, 3);

    // --- End-to-end LU simulation throughput (PDEXEC NOALLOC, 8 nodes).
    let mut cfg = env.lu(r, 8);
    cfg.n = n;
    let (steps, best_secs) = sample_predict(&env, &cfg, batch, samples);
    let eps = steps as f64 / best_secs;
    println!(
        "lu_sim_pdexec n={n} r={r} 8 nodes: {steps} steps in {best_secs:.3}s host = {eps:.0} events/sec"
    );
    json.record(
        "lu_sim_pdexec_2592_r216_8n",
        &[
            ("n", n as f64),
            ("r", r as f64),
            ("steps", steps as f64),
            ("host_wall_secs", best_secs),
            ("events_per_sec", eps),
        ],
    );

    // --- Testbed (stochastic fabric) throughput on the same workload.
    let mut best_secs = f64::INFINITY;
    let mut steps = 0u64;
    for s in 0..samples {
        let mut batch_secs = 0.0;
        let mut batch_steps = 0u64;
        for b in 0..batch {
            let run = env
                .measure(&cfg, 42 + u64::from(s * batch + b))
                .unwrap_or_else(|e| panic!("measured run failed: {e}"));
            batch_secs += run.report.host_wall.as_secs_f64();
            batch_steps += run.report.steps;
        }
        if batch_secs < best_secs {
            best_secs = batch_secs;
            steps = batch_steps;
        }
    }
    let eps_tb = steps as f64 / best_secs;
    println!("lu_sim_testbed n={n} r={r} 8 nodes: {steps} steps in {best_secs:.3}s host = {eps_tb:.0} events/sec");
    json.record(
        "lu_sim_testbed_2592_r216_8n",
        &[
            ("n", n as f64),
            ("r", r as f64),
            ("steps", steps as f64),
            ("host_wall_secs", best_secs),
            ("events_per_sec", eps_tb),
        ],
    );
}

/// The `--replay` mode: verify a recorded reference journal end to end.
/// Exits the process (0 on a faithful replay, 1 with a pinpointed
/// diagnostic otherwise).
fn replay_mode(path_arg: Option<String>) -> ! {
    let path = path_arg.map_or_else(default_journal_path, std::path::PathBuf::from);
    let threads = workload::engine_threads();
    match replay_journal_file(&path, threads) {
        Ok(r) => {
            println!(
                "replay: {} ({} events) byte-identical from prefixes {:?} at engine_threads={}",
                path.display(),
                r.events,
                r.prefixes,
                r.threads
            );
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("replay: {msg}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--replay") {
        replay_mode(args.get(i + 1).cloned());
    }
    let mut json = BenchJson::new();
    if args.iter().any(|a| a == "--scaling") {
        scaling(&mut json);
    } else {
        throughput(&mut json);
    }

    if let Some(rss) = peak_rss_bytes() {
        println!(
            "peak RSS: {:.1} MB, threads: {}",
            rss as f64 / 1e6,
            thread_count()
        );
    }
    json.write();
    println!("wrote results/BENCH_engine.json");
}
