//! Engine performance benchmark: the end-to-end LU simulation throughput
//! measurement (events-processed-per-second) recorded into
//! `results/BENCH_engine.json` so that every PR leaves a perf trajectory.
//!
//! The headline workload is the paper's Table 1 PDEXEC setting: a 2592²
//! matrix in twelve 216-column blocks on 8 nodes, simulated with ghost
//! payloads (NOALLOC). `DVNS_SMOKE=1` shrinks the matrix for CI.

use dps_bench::harness::{peak_rss_bytes, smoke, thread_count, BenchJson};
use dps_bench::{Env, N};

fn main() {
    let env = Env::paper();
    let n = if smoke() { 432 } else { N };
    let r = n / 12;
    // A single 2592² run lasts only tens of milliseconds of host time, so
    // a lone wall-clock sample swings wildly on a shared host. Each sample
    // therefore sums the engine-internal wall of `batch` consecutive runs,
    // and we keep the best of `samples` batches.
    let batch: u32 = std::env::var("DVNS_PERF_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let samples: u32 = std::env::var("DVNS_PERF_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mut json = BenchJson::new();

    // --- End-to-end LU simulation throughput (PDEXEC NOALLOC, 8 nodes).
    let mut cfg = env.lu(r, 8);
    cfg.n = n;
    // Warmup once (page in code + allocator), then sample.
    let _ = env.predict(&cfg);
    let mut best_secs = f64::INFINITY;
    let mut steps = 0u64;
    for _ in 0..samples {
        let mut batch_secs = 0.0;
        let mut batch_steps = 0u64;
        for _ in 0..batch {
            let run = env
                .predict(&cfg)
                .unwrap_or_else(|e| panic!("predicted run failed: {e}"));
            batch_secs += run.report.host_wall.as_secs_f64();
            batch_steps += run.report.steps;
        }
        if batch_secs < best_secs {
            best_secs = batch_secs;
            steps = batch_steps;
        }
    }
    let eps = steps as f64 / best_secs;
    println!(
        "lu_sim_pdexec n={n} r={r} 8 nodes: {steps} steps in {best_secs:.3}s host = {eps:.0} events/sec"
    );
    json.record(
        "lu_sim_pdexec_2592_r216_8n",
        &[
            ("n", n as f64),
            ("r", r as f64),
            ("steps", steps as f64),
            ("host_wall_secs", best_secs),
            ("events_per_sec", eps),
        ],
    );

    // --- Testbed (stochastic fabric) throughput on the same workload.
    let mut best_secs = f64::INFINITY;
    let mut steps = 0u64;
    for s in 0..samples {
        let mut batch_secs = 0.0;
        let mut batch_steps = 0u64;
        for b in 0..batch {
            let run = env
                .measure(&cfg, 42 + u64::from(s * batch + b))
                .unwrap_or_else(|e| panic!("measured run failed: {e}"));
            batch_secs += run.report.host_wall.as_secs_f64();
            batch_steps += run.report.steps;
        }
        if batch_secs < best_secs {
            best_secs = batch_secs;
            steps = batch_steps;
        }
    }
    let eps_tb = steps as f64 / best_secs;
    println!("lu_sim_testbed n={n} r={r} 8 nodes: {steps} steps in {best_secs:.3}s host = {eps_tb:.0} events/sec");
    json.record(
        "lu_sim_testbed_2592_r216_8n",
        &[
            ("n", n as f64),
            ("r", r as f64),
            ("steps", steps as f64),
            ("host_wall_secs", best_secs),
            ("events_per_sec", eps_tb),
        ],
    );

    if let Some(rss) = peak_rss_bytes() {
        println!(
            "peak RSS: {:.1} MB, threads: {}",
            rss as f64 / 1e6,
            thread_count()
        );
    }
    json.write();
    println!("wrote results/BENCH_engine.json");
}
