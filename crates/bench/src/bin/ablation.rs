//! Model ablations called out in DESIGN.md — quantifying the design choices
//! of the simulator's machine model:
//!
//! 1. **flow-control window sweep** — the serialize/pipeline/flood U-shape
//!    behind the paper's FC recommendation (Figure 6);
//! 2. **equal-share vs max-min bandwidth fairness** — how much accuracy the
//!    paper's simpler sharing assumption gives away;
//! 3. **communication CPU cost on/off** — the paper's argument for modeling
//!    the processing power consumed by transfers (§4);
//! 4. **per-step dispatch overhead sensitivity** — how strongly predictions
//!    depend on the one non-physical engine parameter.

use dps_bench::{emit, Env};
use dps_sim::SimFabric;
use lu_app::build_lu_app;
use netmodel::Sharing;
use report::{Figure, Series, Table};

fn main() {
    let env = Env::paper();

    // --- 1. flow-control window sweep.
    let mut s_time = Series::new("running time [s]");
    let mut s_queue = Series::new("max queue");
    for w in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut cfg = env.lu(162, 8);
        cfg.pipelined = true;
        cfg.flow_control = Some(w);
        let run = env.predict(&cfg);
        s_time.push(&w.to_string(), run.factorization_time.as_secs_f64());
        s_queue.push(&w.to_string(), run.report.max_queue_len as f64);
    }
    {
        let mut cfg = env.lu(162, 8);
        cfg.pipelined = true;
        let run = env.predict(&cfg);
        s_time.push("none", run.factorization_time.as_secs_f64());
        s_queue.push("none", run.report.max_queue_len as f64);
    }
    let mut fig = Figure::new(
        "Ablation 1 — flow-control window sweep (P, r=162, 8 nodes)",
        "window",
    );
    fig.add(s_time);
    fig.add(s_queue);
    emit("ablation_window", &fig.render(), Some(&fig.to_csv()));

    // --- 2. bandwidth sharing discipline.
    let mut table = Table::new(
        "Ablation 2 — equal-share (paper) vs max-min fair bandwidth",
        &["config", "equal share [s]", "max-min [s]", "delta"],
    );
    for (label, r, nodes, pipelined) in [
        ("Basic r=324, 4n", 324, 4, false),
        ("Basic r=162, 8n", 162, 8, false),
        ("P r=108, 8n", 108, 8, true),
    ] {
        let mut cfg = env.lu(r, nodes);
        cfg.pipelined = pipelined;
        let eq = env.predict(&cfg).factorization_time.as_secs_f64();
        let (app, _sh) = build_lu_app(cfg.clone());
        let mut fabric = SimFabric::with_sharing(env.net, Sharing::MaxMin);
        let mm_report = dps_sim::simulate_with_fabric(&app, &mut fabric, &env.simcfg);
        let dist = mm_report.mark_time("dist").expect("dist mark");
        let end = mm_report
            .mark_time(&format!("iter:{}", cfg.k_blocks()))
            .expect("final mark");
        let mm = (end - dist).as_secs_f64();
        table.row(&[
            label.into(),
            format!("{eq:.1}"),
            format!("{mm:.1}"),
            format!("{:+.1}%", (mm - eq) / eq * 100.0),
        ]);
    }
    emit("ablation_sharing", &table.render(), Some(&table.to_csv()));

    // --- 3. communication CPU cost on/off.
    let mut table = Table::new(
        "Ablation 3 — CPU cost of communications (paper §4)",
        &["config", "with comm CPU cost [s]", "without [s]", "delta"],
    );
    for (label, r, nodes) in [("Basic r=162, 8n", 162, 8), ("Basic r=108, 8n", 108, 8)] {
        let cfg = env.lu(r, nodes);
        let with = env.predict(&cfg).factorization_time.as_secs_f64();
        let mut free_net = env.net;
        free_net.cpu_in_cost = 0.0;
        free_net.cpu_out_cost = 0.0;
        let without = lu_app::predict_lu(&cfg, free_net, &env.simcfg)
            .factorization_time
            .as_secs_f64();
        table.row(&[
            label.into(),
            format!("{with:.1}"),
            format!("{without:.1}"),
            format!("{:+.1}%", (without - with) / with * 100.0),
        ]);
    }
    emit("ablation_commcpu", &table.render(), Some(&table.to_csv()));

    // --- 4. dispatch-overhead sensitivity.
    let mut s = Series::new("predicted [s]");
    for us in [0u64, 20, 50, 100, 200, 500] {
        let mut simcfg = env.simcfg.clone();
        simcfg.step_overhead = desim::SimDuration::from_micros(us);
        let cfg = env.lu(108, 8);
        let run = lu_app::predict_lu(&cfg, env.net, &simcfg);
        s.push(&format!("{us}us"), run.factorization_time.as_secs_f64());
    }
    let mut fig = Figure::new(
        "Ablation 4 — per-step dispatch overhead sensitivity (Basic r=108, 8 nodes)",
        "step overhead",
    );
    fig.add(s);
    emit("ablation_overhead", &fig.render(), Some(&fig.to_csv()));
}
