//! Model ablations called out in DESIGN.md — quantifying the design choices
//! of the simulator's machine model:
//!
//! 1. **flow-control window sweep** — the serialize/pipeline/flood U-shape
//!    behind the paper's FC recommendation (Figure 6);
//! 2. **equal-share vs max-min bandwidth fairness** — how much accuracy the
//!    paper's simpler sharing assumption gives away;
//! 3. **communication CPU cost on/off** — the paper's argument for modeling
//!    the processing power consumed by transfers (§4);
//! 4. **per-step dispatch overhead sensitivity** — how strongly predictions
//!    depend on the one non-physical engine parameter.
//!
//! Every sweep point is an independent simulation, so each section fans
//! out through the parallel harness.

use dps_bench::{emit, run_parallel, Env};
use dps_sim::SimFabric;
use lu_app::build_lu_app;
use netmodel::Sharing;
use report::{Figure, Series, Table};

fn main() {
    let env = Env::paper();

    // --- 1. flow-control window sweep.
    let windows: Vec<Option<usize>> = [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(Some)
        .chain([None])
        .collect();
    let sweep: Vec<(f64, f64)> = run_parallel(&windows, |_, &w| {
        let mut cfg = env.lu(162, 8);
        cfg.pipelined = true;
        cfg.flow_control = w;
        let run = env
            .predict(&cfg)
            .unwrap_or_else(|e| panic!("predicted run failed: {e}"));
        (
            run.factorization_time.as_secs_f64(),
            run.report.max_queue_len as f64,
        )
    });
    let mut s_time = Series::new("running time [s]");
    let mut s_queue = Series::new("max queue");
    for (w, (t, q)) in windows.iter().zip(&sweep) {
        let label = w.map_or("none".to_string(), |w| w.to_string());
        s_time.push(&label, *t);
        s_queue.push(&label, *q);
    }
    let mut fig = Figure::new(
        "Ablation 1 — flow-control window sweep (P, r=162, 8 nodes)",
        "window",
    );
    fig.add(s_time);
    fig.add(s_queue);
    emit("ablation_window", &fig.render(), Some(&fig.to_csv()));

    // --- 2. bandwidth sharing discipline.
    let configs = [
        ("Basic r=324, 4n", 324usize, 4u32, false),
        ("Basic r=162, 8n", 162, 8, false),
        ("P r=108, 8n", 108, 8, true),
    ];
    let rows: Vec<(f64, f64)> = run_parallel(&configs, |_, &(_, r, nodes, pipelined)| {
        let mut cfg = env.lu(r, nodes);
        cfg.pipelined = pipelined;
        let eq = env
            .predict(&cfg)
            .unwrap_or_else(|e| panic!("predicted run failed: {e}"))
            .factorization_time
            .as_secs_f64();
        let (app, _sh) = build_lu_app(cfg.clone());
        let mut fabric = SimFabric::with_sharing(env.net, Sharing::MaxMin);
        let mm_report = dps_sim::simulate_with_fabric(&app, &mut fabric, &env.simcfg)
            .unwrap_or_else(|e| panic!("max-min run failed: {e}"));
        let dist = mm_report.mark_time("dist").expect("dist mark");
        let end = mm_report
            .mark_time(&format!("iter:{}", cfg.k_blocks()))
            .expect("final mark");
        (eq, (end - dist).as_secs_f64())
    });
    let mut table = Table::new(
        "Ablation 2 — equal-share (paper) vs max-min fair bandwidth",
        &["config", "equal share [s]", "max-min [s]", "delta"],
    );
    for ((label, ..), (eq, mm)) in configs.iter().zip(&rows) {
        table.row(&[
            (*label).into(),
            format!("{eq:.1}"),
            format!("{mm:.1}"),
            format!("{:+.1}%", (mm - eq) / eq * 100.0),
        ]);
    }
    emit("ablation_sharing", &table.render(), Some(&table.to_csv()));

    // --- 3. communication CPU cost on/off.
    let configs = [
        ("Basic r=162, 8n", 162usize, 8u32),
        ("Basic r=108, 8n", 108, 8),
    ];
    let rows: Vec<(f64, f64)> = run_parallel(&configs, |_, &(_, r, nodes)| {
        let cfg = env.lu(r, nodes);
        let with = env
            .predict(&cfg)
            .unwrap_or_else(|e| panic!("predicted run failed: {e}"))
            .factorization_time
            .as_secs_f64();
        let mut free_net = env.net;
        free_net.cpu_in_cost = 0.0;
        free_net.cpu_out_cost = 0.0;
        let without = lu_app::predict_lu(&cfg, free_net, &env.simcfg)
            .unwrap_or_else(|e| panic!("predicted run failed: {e}"))
            .factorization_time
            .as_secs_f64();
        (with, without)
    });
    let mut table = Table::new(
        "Ablation 3 — CPU cost of communications (paper §4)",
        &["config", "with comm CPU cost [s]", "without [s]", "delta"],
    );
    for ((label, ..), (with, without)) in configs.iter().zip(&rows) {
        table.row(&[
            (*label).into(),
            format!("{with:.1}"),
            format!("{without:.1}"),
            format!("{:+.1}%", (without - with) / with * 100.0),
        ]);
    }
    emit("ablation_commcpu", &table.render(), Some(&table.to_csv()));

    // --- 4. dispatch-overhead sensitivity.
    let overheads = [0u64, 20, 50, 100, 200, 500];
    let times: Vec<f64> = run_parallel(&overheads, |_, &us| {
        let mut simcfg = env.simcfg.clone();
        simcfg.step_overhead = desim::SimDuration::from_micros(us);
        let cfg = env.lu(108, 8);
        lu_app::predict_lu(&cfg, env.net, &simcfg)
            .unwrap_or_else(|e| panic!("predicted run failed: {e}"))
            .factorization_time
            .as_secs_f64()
    });
    let mut s = Series::new("predicted [s]");
    for (us, t) in overheads.iter().zip(&times) {
        s.push(&format!("{us}us"), *t);
    }
    let mut fig = Figure::new(
        "Ablation 4 — per-step dispatch overhead sensitivity (Basic r=108, 8 nodes)",
        "step overhead",
    );
    fig.add(s);
    emit("ablation_overhead", &fig.render(), Some(&fig.to_csv()));
}
