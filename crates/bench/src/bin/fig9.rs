//! Figure 9: variation of computation time caused by parallel sub-block
//! multiplications, increased pipelining and flow control — 4 nodes,
//! reference = basic flow graph at r = 324 (the paper measured 101.8 s).
//!
//! Paper shape: with the well-balanced r = 324 decomposition, PM's extra
//! communication *slows down* execution (improvement < 1) while P and FC
//! help slightly; prediction errors stay below 5%.

use dps_bench::{emit, fig9_configs, run_pair, run_parallel, Env, Pair};
use lu_app::LuConfig;
use report::{Figure, Series};

fn main() {
    let env = Env::paper();
    let mut points: Vec<(String, LuConfig, u64)> = vec![("reference".into(), env.lu(324, 4), 200)];
    for (i, (label, cfg)) in fig9_configs(&env).into_iter().enumerate() {
        points.push((label, cfg, 201 + i as u64));
    }
    let pairs: Vec<Pair> = run_parallel(&points, |_, (_, cfg, seed)| run_pair(&env, cfg, *seed));

    let reference = pairs[0];
    println!(
        "reference (Basic, r=324, 4 nodes): measured {:.1}s, predicted {:.1}s  (paper: 101.8s)\n",
        reference.measured_secs, reference.predicted_secs
    );

    let mut measured = Series::new("Measurement");
    let mut predicted = Series::new("Prediction");
    let mut worst_err: f64 = 0.0;
    for ((label, _, _), pair) in points.iter().zip(&pairs).skip(1) {
        let m = report::improvement(reference.measured_secs, pair.measured_secs);
        let p = report::improvement(reference.predicted_secs, pair.predicted_secs);
        worst_err = worst_err.max(((p - m) / m).abs());
        measured.push(label, m);
        predicted.push(label, p);
    }

    let mut fig = Figure::new(
        "Figure 9 — impact of modifications (4 nodes, reference r=324)",
        "variant",
    );
    fig.add(measured);
    fig.add(predicted);
    emit("fig9", &fig.render(), Some(&fig.to_csv()));
    println!(
        "worst improvement prediction error: {:.1}% (paper: < 5%)",
        worst_err * 100.0
    );
}
