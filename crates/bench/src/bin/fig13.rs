//! Figure 13: histogram of prediction errors over every measurement of the
//! evaluation.
//!
//! Paper: 168 measurements; 71.4% of predictions within ±4%, 81.6% within
//! ±6%, more than 95% within ±12%.
//!
//! This reproduction sweeps every configuration of Figures 8–12 with three
//! testbed seeds each (one in smoke mode), plus a Jacobi stencil and the
//! per-iteration times of the removal study, and compares them against the
//! simulator's predictions. Each configuration's predict-plus-measure
//! bundle is one parallel point; errors are merged in input order.

use dps_bench::{all_configs, emit, fig13_seeds, removal_configs, run_parallel, Env};
use report::{rel_error, Histogram};

fn main() {
    let env = Env::paper();
    let mut hist = Histogram::symmetric(0.16, 0.04);
    let seeds = fig13_seeds();

    // Whole-run errors across every configuration, `seeds` seeds each.
    let configs = all_configs(&env);
    let errors: Vec<Vec<f64>> = run_parallel(&configs, |i, (_label, cfg)| {
        let predicted = env
            .predict(cfg)
            .unwrap_or_else(|e| panic!("predicted run failed: {e}"))
            .factorization_time
            .as_secs_f64();
        (0..seeds)
            .map(|seed| {
                let measured = env
                    .measure(cfg, 1000 + 31 * i as u64 + seed)
                    .unwrap_or_else(|e| panic!("measured run failed: {e}"))
                    .factorization_time
                    .as_secs_f64();
                rel_error(measured, predicted)
            })
            .collect()
    });
    for e in errors.iter().flatten() {
        hist.add(*e);
    }

    // A second application (the Jacobi stencil) broadens the sample beyond
    // LU — the simulator is application-independent.
    let stencil_points: Vec<(usize, bool)> = [true, false].into_iter().enumerate().collect();
    let stencil_errors: Vec<Vec<f64>> = run_parallel(&stencil_points, |_, &(i, sync)| {
        let mut cfg = stencil_app::StencilConfig::new(4096, 24, 8);
        cfg.mode = lu_app::DataMode::Ghost;
        cfg.synchronized = sync;
        let predicted = stencil_app::predict_stencil(&cfg, env.net, &env.simcfg)
            .unwrap_or_else(|e| panic!("predicted stencil run failed: {e}"))
            .sweep_time
            .as_secs_f64();
        (0..seeds)
            .map(|seed| {
                let measured = stencil_app::measure_stencil(
                    &cfg,
                    env.tb,
                    3000 + 7 * i as u64 + seed,
                    &env.simcfg,
                )
                .unwrap_or_else(|e| panic!("measured stencil run failed: {e}"))
                .sweep_time
                .as_secs_f64();
                rel_error(measured, predicted)
            })
            .collect()
    });
    for e in stencil_errors.iter().flatten() {
        hist.add(*e);
    }

    // Per-iteration errors of the removal study (the dynamic-efficiency
    // validation adds finer-grained samples, like the paper's 168).
    let removal = removal_configs(&env);
    let removal_errors: Vec<Vec<f64>> = run_parallel(&removal, |i, (_label, cfg)| {
        let predicted = env
            .predict(cfg)
            .unwrap_or_else(|e| panic!("predicted run failed: {e}"));
        let pred_iters = lu_app::iteration_times(&predicted.report);
        let mut out = Vec::new();
        for seed in 0..seeds.min(2) {
            let measured = env
                .measure(cfg, 2000 + 17 * i as u64 + seed)
                .unwrap_or_else(|e| panic!("measured run failed: {e}"));
            let meas_iters = lu_app::iteration_times(&measured.report);
            for (p, m) in pred_iters.iter().zip(meas_iters.iter()) {
                // Skip sub-millisecond iterations: relative error on a
                // near-zero denominator is noise, not signal.
                if m.1.as_secs_f64() > 1e-3 {
                    out.push(rel_error(m.1.as_secs_f64(), p.1.as_secs_f64()));
                }
            }
        }
        out
    });
    for e in removal_errors.iter().flatten() {
        hist.add(*e);
    }

    let rendered = format!(
        "{}\nwithin ±4%: {:.1}%   within ±6%: {:.1}%   within ±12%: {:.1}%   mean |err|: {:.1}%\n\
         (paper: 71.4% within ±4%, 81.6% within ±6%, >95% within ±12%)\n",
        hist.render("Figure 13 — prediction errors"),
        hist.fraction_within(0.04) * 100.0,
        hist.fraction_within(0.06) * 100.0,
        hist.fraction_within(0.12) * 100.0,
        hist.mean_abs() * 100.0,
    );
    emit("fig13", &rendered, None);
}
