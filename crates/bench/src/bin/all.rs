//! Runs every table/figure reproduction in sequence (Table 1, Figures
//! 8–13). Equivalent to invoking each binary individually; results land in
//! `results/`.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for name in ["table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "ablation"] {
        println!("\n################ {name} ################\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
}
