//! Runs every table/figure reproduction in sequence (Table 1, Figures
//! 8–13). Equivalent to invoking each binary individually; results land in
//! `results/`. Child processes inherit `DVNS_THREADS` / `DVNS_SMOKE`, so
//! `DVNS_SMOKE=1 all` is the CI smoke run and the total wall clock is
//! recorded in `results/BENCH_engine.json`.

use std::process::Command;

use dps_bench::{thread_count, time, BenchJson};

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let (_, wall) = time(|| {
        for name in [
            "table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "ablation",
        ] {
            println!("\n################ {name} ################\n");
            let status = Command::new(dir.join(name))
                .status()
                .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
            assert!(status.success(), "{name} failed");
        }
    });
    println!("\ntotal: {wall:.2}s wall on {} thread(s)", thread_count());
    let mut json = BenchJson::new();
    json.record(
        "all_figures",
        &[("wall_secs", wall), ("threads", thread_count() as f64)],
    );
    json.write();
}
