//! Table 1: simulation times, memory consumption and predicted running
//! times in the different simulation settings.
//!
//! Paper reference (UltraSparc II host): real 8-node execution 62.3 s, real
//! serial 185.1 s (108 MB); direct-execution simulation 193.0 s host time /
//! 127 MB / 60.7 s predicted; PDEXEC 9.1 s / 124 MB / 60.3 s; PDEXEC
//! NOALLOC 6.5 s / 14 MB / 59.9 s.
//!
//! This reproduction's hosts differ (the paper's second host, a Pentium 4,
//! already showed direct execution times shrink with the host while PDEXEC
//! predictions stay put). The *relations* to check: direct-execution
//! simulation ≈ the serial run + small overhead on the same host; PDEXEC is
//! an order of magnitude faster than the execution it predicts; NOALLOC
//! slashes memory; and all three predict (nearly) the same running time for
//! the target cluster.

use std::time::Instant;

use dps_bench::{smoke, Env, N};
use dps_sim::TimingMode;
use linalg::Matrix;
use lu_app::{DataMode, LuConfig};
use netmodel::NetParams;
use perfmodel::{LuCost, PlatformProfile};
use report::Table;

fn main() {
    let env = Env::paper();
    // Full scale in release; a scaled-down matrix in debug builds and in
    // smoke mode so the real kernels stay tractable. Table rows time the
    // host, so this binary stays serial — parallelizing rows would
    // corrupt the very numbers being reported.
    let n = if cfg!(debug_assertions) || smoke() {
        864
    } else {
        N
    };
    let r = n / 12; // 216 at full scale, keeping K = 12 as in the paper
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("matrix {n} x {n}, block size r = {r}, host cores: {cores}");
    println!("target cluster: 8 x UltraSparc II 440MHz, Fast Ethernet\n");

    let mut table = Table::new(
        "Table 1 — simulation settings (host: this machine)",
        &[
            "setting",
            "host running time [s]",
            "modeled memory [MB]",
            "predicted running time [s]",
        ],
    );

    let mb = |bytes: u64| format!("{:.0}", bytes as f64 / 1e6);

    // --- Real application, serial (the paper's 185.1 s reference).
    let t0 = Instant::now();
    let a = Matrix::random(n, n, 42);
    let f = linalg::lu_blocked(&a, r);
    let serial_host = t0.elapsed().as_secs_f64();
    assert!(linalg::lu_residual(&a, &f) < 1e-9);
    table.row(&[
        "Real application (1 node, this host)".into(),
        format!("{serial_host:.2}"),
        mb((n * n * 8 * 2) as u64),
        "N/A".into(),
    ]);

    // --- Real application on the native OS-thread runner (8 workers).
    let mut cfg = LuConfig::new(n, r, 8);
    cfg.mode = DataMode::Real;
    let (app, _sh) = lu_app::build_lu_app(cfg.clone());
    let native = testbed::run_native(&app, std::time::Duration::from_secs(600));
    assert!(native.terminated);
    table.row(&[
        format!("Real application (8 workers, {cores} core host)"),
        format!("{:.2}", native.wall.as_secs_f64()),
        "N/A".into(),
        "N/A".into(),
    ]);

    // --- Direct execution simulation: really run + measure the kernels.
    let mut direct_cfg = LuConfig::new(n, r, 8);
    direct_cfg.mode = DataMode::Real;
    direct_cfg.cost = None; // no charges: pure measurement
    let mut simcfg = env.simcfg.clone();
    simcfg.timing = TimingMode::Measured;
    let run = lu_app::predict_lu(&direct_cfg, env.net, &simcfg)
        .unwrap_or_else(|e| panic!("direct-execution run failed: {e}"));
    table.row(&[
        "Direct execution (sim, this host)".into(),
        format!("{:.2}", run.report.host_wall.as_secs_f64()),
        mb(run.report.mem_peak_bytes),
        format!(
            "{:.1} (host-dependent)",
            run.factorization_time.as_secs_f64()
        ),
    ]);

    // --- PDEXEC: allocate, but replace kernels with benchmarked times.
    let mut pdexec_cfg = LuConfig::new(n, r, 8);
    pdexec_cfg.mode = DataMode::Alloc;
    pdexec_cfg.cost = Some(env.cost);
    let run = lu_app::predict_lu(&pdexec_cfg, env.net, &env.simcfg)
        .unwrap_or_else(|e| panic!("PDEXEC run failed: {e}"));
    let pdexec_pred = run.factorization_time.as_secs_f64();
    table.row(&[
        "PDEXEC (sim)".into(),
        format!("{:.2}", run.report.host_wall.as_secs_f64()),
        mb(run.report.mem_peak_bytes),
        format!("{pdexec_pred:.1}"),
    ]);

    // --- PDEXEC NOALLOC: ghost payloads.
    let mut noalloc_cfg = pdexec_cfg.clone();
    noalloc_cfg.mode = DataMode::Ghost;
    let run = lu_app::predict_lu(&noalloc_cfg, env.net, &env.simcfg)
        .unwrap_or_else(|e| panic!("NOALLOC run failed: {e}"));
    let noalloc_pred = run.factorization_time.as_secs_f64();
    table.row(&[
        "PDEXEC NOALLOC (sim)".into(),
        format!("{:.2}", run.report.host_wall.as_secs_f64()),
        mb(run.report.mem_peak_bytes),
        format!("{noalloc_pred:.1}"),
    ]);

    // --- Portability / what-if rows (§4's parametric studies).
    let mut p4_cfg = noalloc_cfg.clone();
    p4_cfg.cost = Some(LuCost::new(PlatformProfile::pentium4_2800()));
    let run = lu_app::predict_lu(&p4_cfg, env.net, &env.simcfg)
        .unwrap_or_else(|e| panic!("Pentium 4 run failed: {e}"));
    table.row(&[
        "PDEXEC, target = Pentium 4 cluster".into(),
        format!("{:.2}", run.report.host_wall.as_secs_f64()),
        mb(run.report.mem_peak_bytes),
        format!("{:.1}", run.factorization_time.as_secs_f64()),
    ]);
    let run = lu_app::predict_lu(&noalloc_cfg, NetParams::gigabit_ethernet(), &env.simcfg)
        .unwrap_or_else(|e| panic!("gigabit what-if run failed: {e}"));
    table.row(&[
        "PDEXEC, what-if gigabit network".into(),
        format!("{:.2}", run.report.host_wall.as_secs_f64()),
        mb(run.report.mem_peak_bytes),
        format!("{:.1}", run.factorization_time.as_secs_f64()),
    ]);

    dps_bench::emit("table1", &table.render(), Some(&table.to_csv()));

    let drift = (pdexec_pred - noalloc_pred).abs() / pdexec_pred;
    println!(
        "PDEXEC vs NOALLOC prediction drift: {:.2}% (paper: -1.3% vs direct)",
        drift * 100.0
    );
}
