//! Figure 12: running times of dynamic thread removal strategies (r = 324,
//! basic flow graph, eight column blocks).
//!
//! Paper shape (measured ≈ 85–105 s band): using 8 nodes for the whole
//! computation or only for the first iteration yields almost the same
//! running time — deallocating 4 nodes after iteration 1 frees half the
//! cluster at a negligible cost; prediction errors are small.
//!
//! The predicted side runs through the shared-prefix sweep planner
//! (`workload::sweep_lu_labelled`): every strategy executes identically
//! until its first removal decision, so the sweep pays for that prefix once
//! and forks per-strategy suffixes. `results/BENCH_engine.json` records the
//! fresh-vs-forked wall clocks for this sweep and for a denser what-if
//! sweep ("kill 4 after iteration k" for every k), where the prefix sharing
//! is most pronounced.

use dps_bench::{emit, removal_configs, run_parallel, smoke, time, BenchJson, Env};
use lu_app::LuConfig;
use report::{rel_error, Figure, Series};
use workload::{sweep_lu_labelled, SweepStats};

/// Times a removal family both ways — N fresh runs (the status quo) vs one
/// shared prefix plus forks — asserting identical reports, and returns
/// `(forked runs, stats, fresh wall, forked wall)`.
fn run_both_ways(
    env: &Env,
    points: &[(String, LuConfig)],
) -> (Vec<(String, lu_app::LuRun)>, SweepStats, f64, f64) {
    let (fresh, fresh_wall) = time(|| {
        run_parallel(points, |_, (_, cfg)| {
            env.predict(cfg)
                .unwrap_or_else(|e| panic!("predicted run failed: {e}"))
        })
    });
    let ((forked, stats), forked_wall) = time(|| {
        sweep_lu_labelled(points, env.net, &env.simcfg)
            .unwrap_or_else(|e| panic!("sweep failed: {e}"))
    });
    for ((label, f), fr) in forked.iter().zip(&fresh) {
        assert_eq!(
            f.report.canonical_string(),
            fr.report.canonical_string(),
            "{label}: forked sweep must equal fresh runs"
        );
    }
    (forked, stats, fresh_wall, forked_wall)
}

fn main() {
    let env = Env::paper();
    let points = removal_configs(&env);
    let measured: Vec<f64> = run_parallel(&points, |i, (_, cfg)| {
        env.measure(cfg, 500 + i as u64)
            .unwrap_or_else(|e| panic!("measured run failed: {e}"))
            .factorization_time
            .as_secs_f64()
    });
    let (forked, stats, fresh_wall, forked_wall) = run_both_ways(&env, &points);

    let mut m_series = Series::new("Measurement");
    let mut p_series = Series::new("Prediction");
    for ((label, run), m) in forked.iter().zip(&measured) {
        let p = run.factorization_time.as_secs_f64();
        m_series.push(label, *m);
        p_series.push(label, p);
        println!(
            "{label:<45} measured {m:7.1}s  predicted {p:7.1}s  (err {:+.1}%)",
            rel_error(*m, p) * 100.0
        );
    }
    println!();
    let mut fig = Figure::new(
        "Figure 12 — impact of removing multiplication threads [s]",
        "strategy",
    );
    fig.add(m_series);
    fig.add(p_series);
    emit("fig12", &fig.render(), Some(&fig.to_csv()));

    let mut json = BenchJson::new();
    json.record(
        "fig12_removal_sweep",
        &[
            ("points", points.len() as f64),
            ("fresh_wall_secs", fresh_wall),
            ("forked_wall_secs", forked_wall),
            ("forked_points", stats.forked as f64),
            ("speedup", fresh_wall / forked_wall.max(1e-12)),
        ],
    );

    // The denser what-if sweep a scheduler would ask for: "what does
    // killing half the nodes after iteration k cost?", for every k. All
    // points share one prefix family, so the planner's advantage compounds.
    let ks = if smoke() { 1..=3 } else { 1..=7 };
    let mut whatif: Vec<(String, LuConfig)> = vec![("keep 8".into(), {
        let mut c = env.lu(324, 8);
        c.workers = 8;
        c
    })];
    for k in ks {
        let mut c = env.lu(324, 8);
        c.workers = 8;
        c.removal = vec![(k, 4)];
        whatif.push((format!("kill 4 after it. {k}"), c));
    }
    let (_, stats, fresh_wall, forked_wall) = run_both_ways(&env, &whatif);
    println!(
        "what-if removal sweep ({} points): fresh {fresh_wall:.2}s, forked {forked_wall:.2}s ({:.2}x)",
        whatif.len(),
        fresh_wall / forked_wall.max(1e-12),
    );
    json.record(
        "removal_whatif_sweep",
        &[
            ("points", whatif.len() as f64),
            ("fresh_wall_secs", fresh_wall),
            ("forked_wall_secs", forked_wall),
            ("forked_points", stats.forked as f64),
            ("speedup", fresh_wall / forked_wall.max(1e-12)),
        ],
    );
    json.write();
}
