//! Figure 12: running times of dynamic thread removal strategies (r = 324,
//! basic flow graph, eight column blocks).
//!
//! Paper shape (measured ≈ 85–105 s band): using 8 nodes for the whole
//! computation or only for the first iteration yields almost the same
//! running time — deallocating 4 nodes after iteration 1 frees half the
//! cluster at a negligible cost; prediction errors are small.

use dps_bench::{emit, removal_configs, run_pair, run_parallel, Env, Pair};
use report::{Figure, Series};

fn main() {
    let env = Env::paper();
    let points = removal_configs(&env);
    let pairs: Vec<Pair> = run_parallel(&points, |i, (_, cfg)| run_pair(&env, cfg, 500 + i as u64));

    let mut measured = Series::new("Measurement");
    let mut predicted = Series::new("Prediction");
    for ((label, _), pair) in points.iter().zip(&pairs) {
        measured.push(label, pair.measured_secs);
        predicted.push(label, pair.predicted_secs);
        println!(
            "{label:<45} measured {:7.1}s  predicted {:7.1}s  (err {:+.1}%)",
            pair.measured_secs,
            pair.predicted_secs,
            pair.rel_error() * 100.0
        );
    }
    println!();
    let mut fig = Figure::new(
        "Figure 12 — impact of removing multiplication threads [s]",
        "strategy",
    );
    fig.add(measured);
    fig.add(predicted);
    emit("fig12", &fig.render(), Some(&fig.to_csv()));
}
