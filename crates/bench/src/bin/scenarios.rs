//! Scenario runner: lists and executes any registered scenario —
//! the workload crate's built-ins (efficiency profiles, the simulator-
//! backed cluster server) plus this crate's figure reproductions —
//! through the bench harness, behind a persistent result cache.
//!
//! ```text
//! scenarios --list          # every registered scenario
//! scenarios server-sim      # run one (or several) by name
//! scenarios --all           # run everything
//! scenarios server-elastic --seed 7   # re-seed the stochastic inputs
//! scenarios fig10-granularity --no-cache   # force recomputation
//! ```
//!
//! `--seed N` (default 42) is the root seed every stochastic ingredient —
//! analytic job sets, fault schedules — derives from; two invocations with
//! the same seed emit byte-identical CSVs. That determinism backs the
//! result cache (`results/cache/`, override with `DVNS_CACHE_DIR`): a rerun
//! with an unchanged fingerprint replays the stored rendering instead of
//! re-simulating, and `--no-cache` bypasses the lookup. `DVNS_SMOKE=1` (or
//! the `--smoke` flag) shrinks every scenario to its CI-sized subset and
//! `DVNS_THREADS` bounds the fan-out, exactly as for the figure binaries.
//!
//! Selecting `server-scale` additionally times one uncached run of the
//! sharded cluster service and records host throughput (jobs/s, events/s)
//! and the P99 scheduling latency in `results/BENCH_engine.json`.
//! Selecting `server-whatif` records the what-if decision-latency
//! histogram (`whatif_decision_latency`: p50/p99/max microseconds per
//! decision) and the fork-vs-fresh candidate-scoring speedup
//! (`fork_vs_fresh_speedup`) the same way.
//!
//! `--journal` additionally records the committed-event journal of the
//! reference LU run at the session seed, pinpoint-checks the serial stream
//! against a parallel-engine run, and writes it (with replay metadata) to
//! `results/lu_reference.journal` for `perf --replay`. A determinism
//! violation exits non-zero with the first diverging event named.
//!
//! `--chaos` additionally runs the seeded crash/recovery sweep (see the
//! `chaos` binary): the durable server-scale run is crashed at several
//! seeded commit boundaries and each recovery must be byte-identical to
//! the uninterrupted run. Records the `chaos_recovery` and
//! `recovery_latency` rows; any divergence exits non-zero, pinpointed.

use dps_bench::chaos::{record_chaos, run_chaos, ChaosConfig};
use dps_bench::{
    default_journal_path, emit, figure_scenarios, record_reference_journal, run_scenario, smoke,
    time, BenchJson,
};
use workload::{
    builtin_scenarios, find_scenario, fork_vs_fresh_bench, server_scale_bench, server_whatif_bench,
    ScenarioCtx, ScenarioSpec, SimEnv, DEFAULT_SEED,
};

fn registry() -> Vec<ScenarioSpec> {
    let mut specs = builtin_scenarios();
    specs.extend(figure_scenarios());
    specs
}

fn list(specs: &[ScenarioSpec]) {
    let width = specs.iter().map(|s| s.name.len()).max().unwrap_or(0);
    println!("registered scenarios:");
    for s in specs {
        println!("  {:width$}  {}", s.name, s.summary);
    }
    println!("\nrun with: scenarios <name>... | --all   (DVNS_SMOKE=1 for the CI-sized subset)");
}

fn run(spec: &ScenarioSpec, ctx: &ScenarioCtx, use_cache: bool, json: &mut BenchJson) {
    let (outcome, wall) = time(|| run_scenario(spec, ctx, use_cache));
    if outcome.cache_hit {
        eprintln!("scenario {}: cache hit", spec.name);
    }
    emit(
        &format!("scenario_{}", spec.name),
        &outcome.text,
        Some(&outcome.csv),
    );
    json.record(
        &format!("scenario_{}", spec.name),
        &[
            ("wall_secs", wall),
            ("cache_hit", f64::from(u8::from(outcome.cache_hit))),
        ],
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = DEFAULT_SEED;
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        let value = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--seed needs a value");
            std::process::exit(2);
        });
        seed = value.parse().unwrap_or_else(|_| {
            eprintln!("--seed needs an unsigned integer, got `{value}`");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
    }
    let mut use_cache = true;
    if let Some(i) = args.iter().position(|a| a == "--no-cache") {
        use_cache = false;
        args.remove(i);
    }
    let mut journal = false;
    if let Some(i) = args.iter().position(|a| a == "--journal") {
        journal = true;
        args.remove(i);
    }
    let mut chaos = false;
    if let Some(i) = args.iter().position(|a| a == "--chaos") {
        chaos = true;
        args.remove(i);
    }
    let mut force_smoke = false;
    if let Some(i) = args.iter().position(|a| a == "--smoke") {
        force_smoke = true;
        args.remove(i);
    }
    let ctx = ScenarioCtx::new(smoke() || force_smoke, seed);
    let specs = registry();
    if !journal && !chaos && (args.is_empty() || args.iter().any(|a| a == "--list")) {
        list(&specs);
        return;
    }

    let selected: Vec<&ScenarioSpec> = if args.iter().any(|a| a == "--all") {
        specs.iter().collect()
    } else {
        args.iter()
            .map(|name| {
                find_scenario(&specs, name).unwrap_or_else(|| {
                    eprintln!("unknown scenario `{name}` — try --list");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut json = BenchJson::new();
    let mut bench_scale = false;
    let mut bench_whatif = false;
    for spec in selected {
        run(spec, &ctx, use_cache, &mut json);
        bench_scale |= spec.name == "server-scale";
        bench_whatif |= spec.name == "server-whatif";
    }
    if bench_scale {
        // Host-throughput row: one uncached, timed run at the highest
        // shard count. Virtual-time metrics live in the scenario CSV (they
        // are cached and byte-compared); wall-clock numbers belong here.
        let (b, wall) = time(|| server_scale_bench(&ctx));
        json.record(
            "server_scale",
            &[
                ("jobs", b.jobs as f64),
                ("jobs_per_sec", b.jobs as f64 / wall.max(1e-9)),
                ("events", b.events as f64),
                ("events_per_sec", b.events as f64 / wall.max(1e-9)),
                ("p99_sched_latency_ms", b.p99_sched_latency_ms),
                ("wall_secs", wall),
            ],
        );
    }
    if bench_whatif {
        // Decision-latency row: one uncached run with the per-decision
        // wall-clock histogram enabled.
        let (b, wall) = time(|| server_whatif_bench(&ctx));
        json.record(
            "whatif_decision_latency",
            &[
                ("jobs", b.jobs as f64),
                ("decisions", b.decisions as f64),
                ("decisions_per_sec", b.decisions as f64 / wall.max(1e-9)),
                ("p50_us", b.p50_us),
                ("p99_us", b.p99_us),
                ("max_us", b.max_us),
                ("wall_secs", wall),
            ],
        );
        // Fork-vs-fresh row: the same candidate slate answered by forking
        // one warm checkpointed base versus fresh full simulations.
        let env = SimEnv::paper();
        let mut cfg = if ctx.smoke {
            env.lu_sized(324, 81, 4)
        } else {
            env.lu_sized(648, 81, 8)
        };
        cfg.workers = cfg.nodes;
        let barriers: Vec<usize> = (1..cfg.k_blocks()).collect();
        match fork_vs_fresh_bench(&cfg, env.net, &env.simcfg, &barriers) {
            Ok(r) => json.record(
                "fork_vs_fresh_speedup",
                &[
                    ("candidates", r.candidates as f64),
                    ("forked_secs", r.forked_secs),
                    ("fresh_secs", r.fresh_secs),
                    ("speedup", r.speedup()),
                ],
            ),
            Err(e) => eprintln!("fork_vs_fresh bench failed: {e}"),
        }
    }
    if journal {
        let path = default_journal_path();
        let cross = workload::engine_threads().max(2);
        let (res, wall) = time(|| record_reference_journal(seed, ctx.smoke, cross, &path));
        match res {
            Ok(probe) => {
                println!(
                    "journal: {} events recorded to {} \
                     (serial \u{2261} parallel at engine_threads={}, canonical {})",
                    probe.events,
                    path.display(),
                    probe.cross_threads,
                    probe.digest
                );
                json.record(
                    "journal_probe",
                    &[("events", probe.events as f64), ("wall_secs", wall)],
                );
            }
            Err(msg) => {
                eprintln!("journal: {msg}");
                std::process::exit(1);
            }
        }
    }
    if chaos {
        // Crash/recovery sweep: fewer points than the dedicated `chaos`
        // binary — this is the "ride-along" smoke, not the full harness.
        let out = run_chaos(
            &ChaosConfig {
                points: 4,
                seed,
                faulted: true,
                smoke: ctx.smoke,
            },
            |l| println!("{l}"),
        );
        record_chaos(&mut json, &out);
        if !out.passed() {
            for f in &out.failures {
                eprintln!("chaos: {f}");
            }
            json.write();
            std::process::exit(1);
        }
    }
    json.write();
}
