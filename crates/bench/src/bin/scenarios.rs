//! Scenario runner: lists and executes any registered scenario —
//! the workload crate's built-ins (efficiency profiles, the simulator-
//! backed cluster server) plus this crate's figure reproductions —
//! through the bench harness.
//!
//! ```text
//! scenarios --list          # every registered scenario
//! scenarios server-sim      # run one (or several) by name
//! scenarios --all           # run everything
//! scenarios server-elastic --seed 7   # re-seed the stochastic inputs
//! ```
//!
//! `--seed N` (default 42) is the root seed every stochastic ingredient —
//! analytic job sets, fault schedules — derives from; two invocations with
//! the same seed emit byte-identical CSVs. `DVNS_SMOKE=1` shrinks every
//! scenario to its CI-sized subset and `DVNS_THREADS` bounds the fan-out,
//! exactly as for the figure binaries.

use dps_bench::{emit, figure_scenarios, run_parallel, smoke, time, BenchJson};
use workload::{builtin_scenarios, find_scenario, ScenarioCtx, ScenarioSpec, DEFAULT_SEED};

fn registry() -> Vec<ScenarioSpec> {
    let mut specs = builtin_scenarios();
    specs.extend(figure_scenarios());
    specs
}

fn list(specs: &[ScenarioSpec]) {
    let width = specs.iter().map(|s| s.name.len()).max().unwrap_or(0);
    println!("registered scenarios:");
    for s in specs {
        println!("  {:width$}  {}", s.name, s.summary);
    }
    println!("\nrun with: scenarios <name>... | --all   (DVNS_SMOKE=1 for the CI-sized subset)");
}

/// Renders rows of `(label, fields)` as an aligned table; field names
/// come from the first row (every point of a scenario reports the same
/// fields).
fn render(spec: &ScenarioSpec, rows: &[(String, Vec<(&'static str, f64)>)]) -> (String, String) {
    let headers: Vec<&str> = rows
        .first()
        .map(|(_, fields)| fields.iter().map(|(k, _)| *k).collect())
        .unwrap_or_default();
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(spec.name.len()))
        .max()
        .unwrap_or(0);

    let mut text = format!("{} — {}\n", spec.name, spec.summary);
    let mut csv = String::from("label");
    text.push_str(&format!("{:label_w$}", ""));
    for h in &headers {
        text.push_str(&format!("  {h:>24}"));
        csv.push(',');
        csv.push_str(h);
    }
    text.push('\n');
    csv.push('\n');
    for (label, fields) in rows {
        text.push_str(&format!("{label:label_w$}"));
        csv.push_str(label);
        for (key, value) in fields {
            debug_assert!(headers.contains(key));
            text.push_str(&format!("  {value:>24.4}"));
            csv.push_str(&format!(",{value}"));
        }
        text.push('\n');
        csv.push('\n');
    }
    (text, csv)
}

fn run(spec: &ScenarioSpec, ctx: &ScenarioCtx, json: &mut BenchJson) {
    let points = (spec.points)(ctx);
    let (rows, wall) = time(|| run_parallel(&points, |_, p| (p.label.clone(), (p.run)())));
    let (text, csv) = render(spec, &rows);
    emit(&format!("scenario_{}", spec.name), &text, Some(&csv));
    json.record(
        &format!("scenario_{}", spec.name),
        &[("points", points.len() as f64), ("wall_secs", wall)],
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = DEFAULT_SEED;
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        let value = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--seed needs a value");
            std::process::exit(2);
        });
        seed = value.parse().unwrap_or_else(|_| {
            eprintln!("--seed needs an unsigned integer, got `{value}`");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
    }
    let ctx = ScenarioCtx::new(smoke(), seed);
    let specs = registry();
    if args.is_empty() || args.iter().any(|a| a == "--list") {
        list(&specs);
        return;
    }

    let selected: Vec<&ScenarioSpec> = if args.iter().any(|a| a == "--all") {
        specs.iter().collect()
    } else {
        args.iter()
            .map(|name| {
                find_scenario(&specs, name).unwrap_or_else(|| {
                    eprintln!("unknown scenario `{name}` — try --list");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut json = BenchJson::new();
    for spec in selected {
        run(spec, &ctx, &mut json);
    }
    json.write();
}
