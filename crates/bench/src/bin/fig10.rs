//! Figure 10: impact of decomposition granularity on different pipelining
//! strategies — 8 nodes, reference = basic flow graph at r = 324 (the paper
//! measured 84.2 s).
//!
//! Paper shape: on 8 nodes pipelining (P) clearly beats the basic graph at
//! every block size, P+FC improves further, and each strategy has its own
//! optimal granularity.
//!
//! This is the heaviest single figure, so one invocation times the sweep
//! both serially and at the harness's (core-clamped) thread count and
//! records both rows in `results/BENCH_engine.json` — the harness speedup,
//! or its absence on a single-core container, is visible without juggling
//! `DVNS_THREADS` across runs.

use dps_bench::{
    emit, fig10_configs, run_pair, run_parallel_with, thread_count, time, BenchJson, Env, Pair,
};
use lu_app::LuConfig;
use report::{Figure, Series};

fn main() {
    let env = Env::paper();
    let mut points: Vec<(String, usize, LuConfig, u64)> = vec![{
        let mut c = env.lu(324, 8);
        c.workers = 8;
        ("reference".into(), 324, c, 300)
    }];
    for (i, (strat, r, cfg)) in fig10_configs(&env).into_iter().enumerate() {
        points.push((strat, r, cfg, 301 + i as u64));
    }
    // Run the sweep serially and (when the clamped thread count allows) in
    // parallel, so one invocation records both harness rows — the speedup,
    // or its absence on a small container, is visible in a single
    // BENCH_engine.json.
    let (pairs, serial_wall): (Vec<Pair>, f64) = time(|| {
        run_parallel_with(&points, 1, |_, (_, _, cfg, seed)| {
            run_pair(&env, cfg, *seed)
        })
    });
    let threads = thread_count().min(points.len());
    let (parallel_pairs, parallel_wall): (Vec<Pair>, f64) = time(|| {
        run_parallel_with(&points, threads, |_, (_, _, cfg, seed)| {
            run_pair(&env, cfg, *seed)
        })
    });
    assert_eq!(
        parallel_pairs.len(),
        pairs.len(),
        "parallel sweep must cover every point"
    );

    let reference = pairs[0];
    println!(
        "reference (Basic, r=324, 8 nodes): measured {:.1}s, predicted {:.1}s  (paper: 84.2s)\n",
        reference.measured_secs, reference.predicted_secs
    );

    let mut series: Vec<(String, Series)> = Vec::new();
    for ((strat, r, _, _), pair) in points.iter().zip(&pairs).skip(1) {
        let m = report::improvement(reference.measured_secs, pair.measured_secs);
        let p = report::improvement(reference.predicted_secs, pair.predicted_secs);
        for (name, v) in [(strat.clone(), m), (format!("{strat} (sim)"), p)] {
            match series.iter_mut().find(|(n, _)| *n == name) {
                Some((_, s)) => {
                    s.push(&r.to_string(), v);
                }
                None => {
                    let mut s = Series::new(&name);
                    s.push(&r.to_string(), v);
                    series.push((name, s));
                }
            }
        }
    }

    let mut fig = Figure::new(
        "Figure 10 — impact of decomposition granularity (8 nodes, reference Basic r=324)",
        "block size r",
    );
    for (_, s) in series {
        fig.add(s);
    }
    emit("fig10", &fig.render(), Some(&fig.to_csv()));

    println!(
        "fig10 sweep: {serial_wall:.2}s wall serial, {parallel_wall:.2}s on {threads} thread(s)"
    );
    let mut json = BenchJson::new();
    json.record(
        "fig10_sweep_serial",
        &[
            ("wall_secs", serial_wall),
            ("threads", 1.0),
            ("points", points.len() as f64),
        ],
    );
    json.record(
        "fig10_sweep_parallel",
        &[
            ("wall_secs", parallel_wall),
            ("threads", threads as f64),
            ("points", points.len() as f64),
        ],
    );
    json.write();
}
