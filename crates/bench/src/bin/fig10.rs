//! Figure 10: impact of decomposition granularity on different pipelining
//! strategies — 8 nodes, reference = basic flow graph at r = 324 (the paper
//! measured 84.2 s).
//!
//! Paper shape: on 8 nodes pipelining (P) clearly beats the basic graph at
//! every block size, P+FC improves further, and each strategy has its own
//! optimal granularity.

use dps_bench::{emit, fig10_configs, run_pair, Env};
use report::{Figure, Series};

fn main() {
    let env = Env::paper();
    let reference = {
        let mut c = env.lu(324, 8);
        c.workers = 8;
        run_pair(&env, &c, 300)
    };
    println!(
        "reference (Basic, r=324, 8 nodes): measured {:.1}s, predicted {:.1}s  (paper: 84.2s)\n",
        reference.measured_secs, reference.predicted_secs
    );

    let mut series: Vec<(String, Series)> = Vec::new();
    for (i, (strat, r, cfg)) in fig10_configs(&env).into_iter().enumerate() {
        let pair = run_pair(&env, &cfg, 301 + i as u64);
        let m = report::improvement(reference.measured_secs, pair.measured_secs);
        let p = report::improvement(reference.predicted_secs, pair.predicted_secs);
        for (name, v) in [(strat.clone(), m), (format!("{strat} (sim)"), p)] {
            match series.iter_mut().find(|(n, _)| *n == name) {
                Some((_, s)) => {
                    s.push(&r.to_string(), v);
                }
                None => {
                    let mut s = Series::new(&name);
                    s.push(&r.to_string(), v);
                    series.push((name, s));
                }
            }
        }
    }

    let mut fig = Figure::new(
        "Figure 10 — impact of decomposition granularity (8 nodes, reference Basic r=324)",
        "block size r",
    );
    for (_, s) in series {
        fig.add(s);
    }
    emit("fig10", &fig.render(), Some(&fig.to_csv()));
}
