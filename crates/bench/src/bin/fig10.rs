//! Figure 10: impact of decomposition granularity on different pipelining
//! strategies — 8 nodes, reference = basic flow graph at r = 324 (the paper
//! measured 84.2 s).
//!
//! Paper shape: on 8 nodes pipelining (P) clearly beats the basic graph at
//! every block size, P+FC improves further, and each strategy has its own
//! optimal granularity.
//!
//! This is the heaviest single figure, so its wall clock (and the thread
//! count it ran with) is recorded in `results/BENCH_engine.json` — compare
//! a `DVNS_THREADS=1` run against the default to see the harness speedup.

use dps_bench::{
    emit, fig10_configs, run_pair, run_parallel, thread_count, time, BenchJson, Env, Pair,
};
use lu_app::LuConfig;
use report::{Figure, Series};

fn main() {
    let env = Env::paper();
    let mut points: Vec<(String, usize, LuConfig, u64)> = vec![{
        let mut c = env.lu(324, 8);
        c.workers = 8;
        ("reference".into(), 324, c, 300)
    }];
    for (i, (strat, r, cfg)) in fig10_configs(&env).into_iter().enumerate() {
        points.push((strat, r, cfg, 301 + i as u64));
    }
    let (pairs, wall): (Vec<Pair>, f64) =
        time(|| run_parallel(&points, |_, (_, _, cfg, seed)| run_pair(&env, cfg, *seed)));

    let reference = pairs[0];
    println!(
        "reference (Basic, r=324, 8 nodes): measured {:.1}s, predicted {:.1}s  (paper: 84.2s)\n",
        reference.measured_secs, reference.predicted_secs
    );

    let mut series: Vec<(String, Series)> = Vec::new();
    for ((strat, r, _, _), pair) in points.iter().zip(&pairs).skip(1) {
        let m = report::improvement(reference.measured_secs, pair.measured_secs);
        let p = report::improvement(reference.predicted_secs, pair.predicted_secs);
        for (name, v) in [(strat.clone(), m), (format!("{strat} (sim)"), p)] {
            match series.iter_mut().find(|(n, _)| *n == name) {
                Some((_, s)) => {
                    s.push(&r.to_string(), v);
                }
                None => {
                    let mut s = Series::new(&name);
                    s.push(&r.to_string(), v);
                    series.push((name, s));
                }
            }
        }
    }

    let mut fig = Figure::new(
        "Figure 10 — impact of decomposition granularity (8 nodes, reference Basic r=324)",
        "block size r",
    );
    for (_, s) in series {
        fig.add(s);
    }
    emit("fig10", &fig.render(), Some(&fig.to_csv()));

    let threads = thread_count().min(points.len()) as f64;
    println!(
        "fig10 sweep: {:.2}s wall on {} thread(s)",
        wall, threads as usize
    );
    let mut json = BenchJson::new();
    let name = if threads <= 1.0 {
        "fig10_sweep_serial"
    } else {
        "fig10_sweep_parallel"
    };
    json.record(
        name,
        &[
            ("wall_secs", wall),
            ("threads", threads),
            ("points", points.len() as f64),
        ],
    );
    json.write();
}
