//! Determinism fuzzer CLI (see `dps_bench::fuzz` for what each case
//! checks).
//!
//! ```text
//! fuzz [--seed N] [--cases N] [--budget-secs N] [--quiet]
//! fuzz --journal [--seed N] [--flips N]
//! ```
//!
//! Runs seeded randomized determinism cases until the case count or the
//! wall-clock budget is exhausted, printing one line per case and a final
//! summary. Exits non-zero if any case failed; the failure lines carry the
//! pinpointed first-diverging-event diagnostics.
//!
//! `--journal` instead fuzzes the journal *codec*: every truncated prefix
//! of a seeded reference journal must come back as a typed decode error
//! (never a panic, never a silent success), seeded bit flips must never
//! panic the decoder, and truncated entry batches must be rejected by the
//! incremental appender.

use std::time::{Duration, Instant};

use dps_bench::fuzz::{fuzz_journal_decode, fuzz_with, FuzzConfig};

struct Args {
    seed: u64,
    cases: usize,
    budget: Option<Duration>,
    quiet: bool,
    journal: bool,
    flips: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        cases: 100,
        budget: None,
        quiet: false,
        journal: false,
        flips: 512,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match a.as_str() {
            "--seed" => args.seed = num("--seed"),
            "--cases" => args.cases = num("--cases") as usize,
            "--budget-secs" => args.budget = Some(Duration::from_secs(num("--budget-secs"))),
            "--quiet" => args.quiet = true,
            "--journal" => args.journal = true,
            "--flips" => args.flips = num("--flips") as usize,
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--seed N] [--cases N] [--budget-secs N] [--quiet]\n\
                            fuzz --journal [--seed N] [--flips N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn fuzz_journal(args: &Args) {
    let start = Instant::now();
    println!("fuzz --journal: seed={} flips={}", args.seed, args.flips);
    match fuzz_journal_decode(args.seed, args.flips) {
        Ok(r) => println!(
            "fuzz --journal: ok — {} byte journal, {} truncations, {} bit flips, \
             {} batch truncations in {:.1}s",
            r.bytes,
            r.truncations,
            r.flips,
            r.batch_truncations,
            start.elapsed().as_secs_f64()
        ),
        Err(failures) => {
            for f in &failures {
                eprintln!("FAIL {f}");
            }
            eprintln!("fuzz --journal: {} failures", failures.len());
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.journal {
        fuzz_journal(&args);
        return;
    }
    let start = Instant::now();
    println!(
        "fuzz: seed={} cases={} budget={:?}",
        args.seed, args.cases, args.budget
    );

    let mut seen_ok = 0usize;
    let mut seen_fail = 0usize;
    let out = fuzz_with(
        &FuzzConfig {
            seed: args.seed,
            cases: args.cases,
        },
        |out| {
            if !args.quiet && out.cases.len() > seen_ok {
                let c = &out.cases[out.cases.len() - 1];
                println!(
                    "  case {}: ok ({}, {} events{})",
                    c.index,
                    c.what,
                    c.journal_len,
                    if c.perturbation_fired {
                        ", perturbation pinpointed"
                    } else {
                        ""
                    }
                );
            }
            if out.failures.len() > seen_fail {
                eprintln!("  {}", out.failures[out.failures.len() - 1]);
            }
            seen_ok = out.cases.len();
            seen_fail = out.failures.len();
            args.budget.is_none_or(|b| start.elapsed() < b)
        },
    );

    for f in &out.failures {
        eprintln!("FAIL {f}");
    }
    println!(
        "fuzz: {} ok, {} failed in {:.1}s",
        out.cases.len(),
        out.failures.len(),
        start.elapsed().as_secs_f64()
    );
    if !out.failures.is_empty() {
        std::process::exit(1);
    }
}
