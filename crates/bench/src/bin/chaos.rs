//! Chaos harness CLI: crash the durable sharded cluster service at
//! seeded commit boundaries, recover each crash, and require the
//! recovered run to be byte-identical to the uninterrupted one.
//!
//! ```text
//! chaos [--points N] [--seed N] [--faulted] [--quiet]
//! ```
//!
//! Each crash point truncates the write-ahead log at a seeded frame
//! boundary (tearing the in-flight frame), recovers by validated replay,
//! and pinpoint-diffs the recovered decision journal and report against
//! the baseline. Appends the `chaos_recovery` and `recovery_latency`
//! rows to `results/BENCH_engine.json`; exits non-zero if any crash
//! point diverged. `DVNS_SMOKE=1` shrinks the run to CI size;
//! `DVNS_CHAOS_POINTS` overrides the default crash-point count (the
//! `--points` flag wins over both).

use dps_bench::chaos::{record_chaos, run_chaos, ChaosConfig};
use dps_bench::{smoke, BenchJson};

struct Args {
    points: u64,
    seed: u64,
    faulted: bool,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        points: std::env::var("DVNS_CHAOS_POINTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
        seed: 42,
        faulted: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects a number"))
        };
        match a.as_str() {
            "--points" => args.points = num("--points"),
            "--seed" => args.seed = num("--seed"),
            "--faulted" => args.faulted = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("usage: chaos [--points N] [--seed N] [--faulted] [--quiet]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = ChaosConfig {
        points: args.points,
        seed: args.seed,
        faulted: args.faulted,
        smoke: smoke(),
    };
    let out = run_chaos(&cfg, |l| {
        if !args.quiet {
            println!("{l}");
        }
    });
    for f in &out.failures {
        eprintln!("FAIL {f}");
    }
    let s = &out.summary;
    println!(
        "chaos: {}/{} crash points recovered byte-identically ({} torn tails), \
         catch-up mean {:.2}s max {:.2}s",
        s.passed, s.points, s.torn, s.mean_catch_up_secs, s.max_catch_up_secs
    );
    let mut json = BenchJson::new();
    record_chaos(&mut json, &out);
    json.write();
    if !out.passed() {
        std::process::exit(1);
    }
}
