//! Figure 11: dynamic efficiency of the LU factorization per iteration —
//! 2592² matrix in eight column blocks (r = 324), basic flow graph.
//!
//! Paper shape: efficiency decays over iterations; 4 nodes start ≈ 50% more
//! efficient than 8 (60.2% vs 37.6%) and reach ≈ 2× by iteration 6;
//! removing 4 of 8 threads after iteration 1 lifts the efficiency of all
//! subsequent iterations.

use cluster::profile_from_report;
use dps_bench::{emit, removal_configs, run_parallel, Env};
use lu_app::{LuConfig, LuRun};
use report::{Figure, Series};
use workload::sweep_lu_labelled;

fn main() {
    let env = Env::paper();
    let mut fig = Figure::new(
        "Figure 11 — dynamic efficiency per LU iteration (r=324, basic graph)",
        "iteration",
    );

    // The paper's three allocations: 8 threads, 4 threads, kill-4-after-1 —
    // measured (testbed) and simulated. Seeds key off the *unfiltered*
    // removal-config index so they match fig12's numbering.
    let wanted = ["4 nodes", "8 nodes", "8 nodes, kill 4 after it. 1"];
    let points: Vec<(usize, String, LuConfig)> = removal_configs(&env)
        .into_iter()
        .enumerate()
        .filter(|(_, (label, _))| wanted.contains(&label.as_str()))
        .map(|(li, (label, cfg))| (li, label, cfg))
        .collect();
    // Measured curves come from the (stochastic) testbed, one full run
    // each; the predicted curves share their simulation prefix through the
    // fork-based sweep planner.
    let measured: Vec<LuRun> = run_parallel(&points, |_, (li, _, cfg)| {
        env.measure(cfg, 400 + *li as u64)
            .unwrap_or_else(|e| panic!("measured run failed: {e}"))
    });
    let labelled: Vec<(String, LuConfig)> = points
        .iter()
        .map(|(_, l, c)| (l.clone(), c.clone()))
        .collect();
    let (predicted, _) = sweep_lu_labelled(&labelled, env.net, &env.simcfg)
        .unwrap_or_else(|e| panic!("sweep failed: {e}"));
    let runs: Vec<(LuRun, LuRun)> = measured
        .into_iter()
        .zip(predicted)
        .map(|(m, (_, p))| (m, p))
        .collect();

    for ((_, label, _), (measured, predicted)) in points.iter().zip(runs) {
        for (suffix, run) in [("", measured), (" sim", predicted)] {
            let profile = profile_from_report(&run.report);
            let mut s = Series::new(&format!("{label}{suffix}"));
            for (i, p) in profile.points.iter().enumerate() {
                s.push(&format!("{}", i + 1), p.efficiency * 100.0);
            }
            fig.add(s);
        }
    }
    println!("efficiency in percent; iteration spans shrink as the trailing matrix does\n");
    emit("fig11", &fig.render(), Some(&fig.to_csv()));
}
