//! Figure 11: dynamic efficiency of the LU factorization per iteration —
//! 2592² matrix in eight column blocks (r = 324), basic flow graph.
//!
//! Paper shape: efficiency decays over iterations; 4 nodes start ≈ 50% more
//! efficient than 8 (60.2% vs 37.6%) and reach ≈ 2× by iteration 6;
//! removing 4 of 8 threads after iteration 1 lifts the efficiency of all
//! subsequent iterations.

use cluster::profile_from_report;
use dps_bench::{emit, removal_configs, Env};
use report::{Figure, Series};

fn main() {
    let env = Env::paper();
    let mut fig = Figure::new(
        "Figure 11 — dynamic efficiency per LU iteration (r=324, basic graph)",
        "iteration",
    );

    // The paper's three allocations: 8 threads, 4 threads, kill-4-after-1 —
    // measured (testbed) and simulated.
    let wanted = ["4 nodes", "8 nodes", "8 nodes, kill 4 after it. 1"];
    for (li, (label, cfg)) in removal_configs(&env).into_iter().enumerate() {
        if !wanted.contains(&label.as_str()) {
            continue;
        }
        let measured = env.measure(&cfg, 400 + li as u64);
        let predicted = env.predict(&cfg);
        for (suffix, run) in [("", measured), (" sim", predicted)] {
            let profile = profile_from_report(&run.report);
            let mut s = Series::new(&format!("{label}{suffix}"));
            for (i, p) in profile.points.iter().enumerate() {
                s.push(&format!("{}", i + 1), p.efficiency * 100.0);
            }
            fig.add(s);
        }
    }
    println!("efficiency in percent; iteration spans shrink as the trailing matrix does\n");
    emit("fig11", &fig.render(), Some(&fig.to_csv()));
}
