//! Figure 8: measured and simulated variation of computation time for the
//! proposed modifications on 4 nodes; reference = basic flow graph,
//! r = 648.
//!
//! Paper shape: PM / P / FC variants bring ~3% at r = 648, dwarfed by
//! decomposition-granularity gains (up to ≈ 3.4–3.6× at r = 162); the
//! simulator tracks the measured improvements within a few percent.

use dps_bench::{emit, fig8_configs, run_pair, run_parallel, Env, Pair};
use lu_app::LuConfig;
use report::{Figure, Series};

fn main() {
    let env = Env::paper();
    // Reference: basic graph at r = 648 (the paper measured 259.4 s),
    // then every variant/granularity point. All points are independent,
    // so they fan across cores; results come back in input order.
    let mut points: Vec<(String, LuConfig, u64)> = vec![("reference".into(), env.lu(648, 4), 100)];
    for (i, (label, cfg)) in fig8_configs(&env).into_iter().enumerate() {
        points.push((label, cfg, 101 + i as u64));
    }
    let pairs: Vec<Pair> = run_parallel(&points, |_, (_, cfg, seed)| run_pair(&env, cfg, *seed));

    let reference = pairs[0];
    println!(
        "reference (Basic, r=648, 4 nodes): measured {:.1}s, predicted {:.1}s  (paper: 259.4s)\n",
        reference.measured_secs, reference.predicted_secs
    );

    let mut measured = Series::new("Measurement");
    let mut predicted = Series::new("Prediction");
    for ((label, _, _), pair) in points.iter().zip(&pairs).skip(1) {
        measured.push(
            label,
            report::improvement(reference.measured_secs, pair.measured_secs),
        );
        predicted.push(
            label,
            report::improvement(reference.predicted_secs, pair.predicted_secs),
        );
    }

    let mut fig = Figure::new(
        "Figure 8 — impact of modifications on running time (4 nodes, reference r=648)",
        "variant",
    );
    fig.add(measured);
    fig.add(predicted);
    emit("fig8", &fig.render(), Some(&fig.to_csv()));
}
