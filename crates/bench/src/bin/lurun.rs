//! `lurun` — run the LU application with identical command-line arguments
//! on any engine, the property the paper highlights: "the real and
//! simulated applications may be run identically, and the command line
//! arguments (which may for instance specify the number of nodes to be used
//! or the decomposition granularity) will have the same effect on both
//! versions of the program."
//!
//! ```text
//! lurun [--engine sim|testbed|native] [--n 2592] [--r 216] [--nodes 8]
//!       [--workers W] [--pipelined] [--fc WINDOW] [--pm SUBBLOCK]
//!       [--kill AFTER:COUNT]... [--mode real|alloc|ghost] [--seed S]
//!       [--target us2|p4|x86] [--net fast|gig|ideal] [--gantt]
//! ```

use desim::SimDuration;
use dps_sim::{SimConfig, TimingMode};
use lu_app::{build_lu_app, DataMode, LuConfig};
use netmodel::NetParams;
use perfmodel::{LuCost, PlatformProfile};
use testbed::TestbedParams;

fn usage() -> ! {
    eprintln!(
        "usage: lurun [--engine sim|testbed|native] [--n N] [--r R] [--nodes K]\n\
         \x20            [--workers W] [--pipelined] [--fc WINDOW] [--pm SUBBLOCK]\n\
         \x20            [--kill AFTER:COUNT]... [--mode real|alloc|ghost] [--seed S]\n\
         \x20            [--target us2|p4|x86] [--net fast|gig|ideal] [--gantt]"
    );
    std::process::exit(2);
}

fn main() {
    let mut engine = "sim".to_string();
    let mut net_name = "fast".to_string();
    let mut target = "us2".to_string();
    let mut gantt = false;
    let mut workers_set = false;
    let mut cfg = LuConfig::new(2592, 216, 8);
    cfg.mode = DataMode::Ghost;

    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => engine = next_val(&mut args, "--engine"),
            "--n" => {
                cfg.n = next_val(&mut args, "--n")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--r" => {
                cfg.r = next_val(&mut args, "--r")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--nodes" => {
                cfg.nodes = next_val(&mut args, "--nodes")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--workers" => {
                cfg.workers = next_val(&mut args, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage());
                workers_set = true;
            }
            "--pipelined" => cfg.pipelined = true,
            "--fc" => {
                cfg.flow_control = Some(
                    next_val(&mut args, "--fc")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--pm" => {
                cfg.parallel_mul = Some(
                    next_val(&mut args, "--pm")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--kill" => {
                let v = next_val(&mut args, "--kill");
                let (a, c) = v.split_once(':').unwrap_or_else(|| usage());
                cfg.removal.push((
                    a.parse().unwrap_or_else(|_| usage()),
                    c.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--mode" => {
                cfg.mode = match next_val(&mut args, "--mode").as_str() {
                    "real" => DataMode::Real,
                    "alloc" => DataMode::Alloc,
                    "ghost" => DataMode::Ghost,
                    _ => usage(),
                }
            }
            "--seed" => {
                cfg.seed = next_val(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--target" => target = next_val(&mut args, "--target"),
            "--net" => net_name = next_val(&mut args, "--net"),
            "--gantt" => gantt = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }

    let profile = match target.as_str() {
        "us2" => PlatformProfile::ultrasparc_ii_440(),
        "p4" => PlatformProfile::pentium4_2800(),
        "x86" => PlatformProfile::modern_x86(),
        _ => usage(),
    };
    cfg.cost = Some(LuCost::new(profile));
    let net = match net_name.as_str() {
        "fast" => NetParams::fast_ethernet(),
        "gig" => NetParams::gigabit_ethernet(),
        "ideal" => NetParams::ideal(),
        _ => usage(),
    };
    if !workers_set {
        cfg.workers = cfg.nodes;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }

    let simcfg = SimConfig {
        timing: if cfg.mode == DataMode::Real && engine != "testbed" {
            TimingMode::Measured
        } else {
            TimingMode::ChargedOnly
        },
        step_overhead: SimDuration::from_micros(50),
        record_trace: gantt,
        ..SimConfig::default()
    };

    println!(
        "LU {n}x{n}, r={r}, {nodes} nodes / {workers} workers, {variant}, mode {mode:?}, \
         target {target}, net {net_name}, engine {engine}",
        n = cfg.n,
        r = cfg.r,
        nodes = cfg.nodes,
        workers = cfg.workers,
        variant = cfg.variant_label(),
        mode = cfg.mode,
    );

    match engine.as_str() {
        "sim" => match lu_app::predict_lu(&cfg, net, &simcfg) {
            Ok(run) => report(&run, gantt),
            Err(e) => {
                eprintln!("simulation failed: {e}");
                std::process::exit(1);
            }
        },
        "testbed" => {
            match lu_app::measure_lu(&cfg, TestbedParams::sun_cluster(), cfg.seed, &simcfg) {
                Ok(run) => report(&run, gantt),
                Err(e) => {
                    eprintln!("testbed run failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "native" => {
            let (app, sh) = build_lu_app(cfg.clone());
            let r = testbed::run_native(&app, std::time::Duration::from_secs(3600));
            assert!(r.terminated, "native run did not terminate");
            println!("native wall time: {:.3}s", r.wall.as_secs_f64());
            if cfg.mode == DataMode::Real {
                let out = sh.result.lock().unwrap().take().expect("output");
                let a = linalg::Matrix::random(cfg.n, cfg.n, cfg.seed);
                let f = linalg::blocked::LuFactors {
                    lu: out.lu,
                    pivots: out.pivots,
                };
                println!("residual: {:.2e}", linalg::lu_residual(&a, &f));
            }
        }
        _ => usage(),
    }
}

fn report(run: &lu_app::LuRun, gantt: bool) {
    println!(
        "factorization time: {:.3}s   (completion {:.3}s, host {:?})",
        run.factorization_time.as_secs_f64(),
        run.report.completion.as_secs_f64(),
        run.report.host_wall
    );
    println!(
        "steps: {}   transfers: {}   peak modeled memory: {:.1} MB   max queue: {}",
        run.report.steps,
        run.report.net.flows_completed,
        run.report.mem_peak_bytes as f64 / 1e6,
        run.report.max_queue_len
    );
    if let Some(res) = run.residual {
        println!("residual: {res:.2e}");
    }
    println!("per-iteration times and dynamic efficiency:");
    for (label, span, eff) in lu_app::iteration_times(&run.report) {
        println!(
            "  {label:>8}  {:8.2}s   {:5.1}%",
            span.as_secs_f64(),
            eff * 100.0
        );
    }
    if gantt {
        if let Some(trace) = &run.report.trace {
            println!("\n{}", trace.gantt(100));
        }
    }
}
