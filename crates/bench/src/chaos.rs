//! Seeded chaos driver: crash the durable sharded cluster service at
//! random commit boundaries and verify byte-identical recovery.
//!
//! This is the bench-side wrapper around `workload`'s chaos harness
//! ([`workload::chaos_baseline`] / [`workload::chaos_sweep`]): it sizes
//! the run (smoke vs full), times the baseline and the sweep, logs one
//! line per crash point, collects divergence diagnostics, and knows how
//! to record the `chaos_recovery` and `recovery_latency` rows of
//! `results/BENCH_engine.json`. Both the `chaos` binary and
//! `scenarios --chaos` drive it.

use workload::{chaos_baseline, chaos_sweep, ChaosSummary, SCALE_JOBS, SCALE_SMOKE_JOBS};

use crate::harness::{time, BenchJson};

/// Shard count chaos runs at: crashes and recoveries must cross shards.
pub const CHAOS_SHARDS: u32 = 2;

/// What one chaos sweep is asked to do.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seeded crash points to exercise.
    pub points: u64,
    /// Root seed: the workload seed, and the base of every crash seed.
    pub seed: u64,
    /// Run the baseline under the seeded cross-shard fault plan.
    pub faulted: bool,
    /// CI sizing ([`SCALE_SMOKE_JOBS`] instead of [`SCALE_JOBS`]).
    pub smoke: bool,
}

/// What a chaos sweep produced: the aggregate, the per-point failure
/// diagnostics (empty = all crash points recovered byte-identically),
/// and the host timings.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Sweep aggregate (pass counts, catch-up latency).
    pub summary: ChaosSummary,
    /// One pinpointed diagnostic per diverging crash point.
    pub failures: Vec<String>,
    /// Host seconds the uninterrupted durable baseline took.
    pub baseline_secs: f64,
    /// Host seconds the whole crash/recover sweep took.
    pub sweep_secs: f64,
}

impl ChaosOutcome {
    /// Whether every crash point recovered byte-identically.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one chaos sweep, invoking `line` with a log line per crash
/// point. Derives crash seeds from `cfg.seed` so reruns are exact.
pub fn run_chaos(cfg: &ChaosConfig, mut line: impl FnMut(&str)) -> ChaosOutcome {
    let jobs = if cfg.smoke {
        SCALE_SMOKE_JOBS
    } else {
        SCALE_JOBS
    };
    let (base, baseline_secs) = time(|| chaos_baseline(CHAOS_SHARDS, jobs, cfg.seed, cfg.faulted));
    line(&format!(
        "chaos: baseline {} jobs, {} shards, faulted={} — {} WAL frames, {} committed entries ({baseline_secs:.1}s)",
        jobs,
        CHAOS_SHARDS,
        cfg.faulted,
        base.wal().frames(),
        base.wal().entries(),
    ));
    let mut failures = Vec::new();
    let crash_base = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let (summary, sweep_secs) = time(|| {
        chaos_sweep(&base, cfg.points, crash_base, |run| {
            let verdict = match &run.divergence {
                None => "ok".to_string(),
                Some(d) => {
                    failures.push(format!("crash seed {}: {d}", run.crash_seed));
                    format!("DIVERGED: {d}")
                }
            };
            line(&format!(
                "  crash seed {}: kept {}/{} frames, recovered {}/{} entries{}, caught up in {:.2}s — {verdict}",
                run.crash_seed,
                run.kept_frames,
                run.frames,
                run.recovered_entries,
                run.total_entries,
                if run.torn { " (torn tail truncated)" } else { "" },
                run.catch_up_secs,
            ));
        })
    });
    ChaosOutcome {
        summary,
        failures,
        baseline_secs,
        sweep_secs,
    }
}

/// Records the sweep as the `chaos_recovery` and `recovery_latency` rows
/// of `BENCH_engine.json`.
pub fn record_chaos(json: &mut BenchJson, out: &ChaosOutcome) {
    let s = &out.summary;
    json.record(
        "chaos_recovery",
        &[
            ("points", s.points as f64),
            ("passed", s.passed as f64),
            ("torn_tails", s.torn as f64),
            ("baseline_secs", out.baseline_secs),
            ("sweep_secs", out.sweep_secs),
        ],
    );
    json.record(
        "recovery_latency",
        &[
            ("mean_catch_up_secs", s.mean_catch_up_secs),
            ("max_catch_up_secs", s.max_catch_up_secs),
            ("mean_recovered_entries", s.mean_recovered_entries),
            (
                "entries_per_sec",
                s.mean_recovered_entries / s.mean_catch_up_secs.max(1e-9),
            ),
        ],
    );
}
