//! Shared experiment definitions: the paper's workload configurations and
//! measured/predicted run pairs.
//!
//! With `DVNS_SMOKE=1` every configuration list shrinks to a CI-sized
//! subset (fewer points, one seed where figures sweep several) that still
//! exercises every code path — variants, granularity, flow control,
//! thread removal — in seconds instead of minutes.

use crate::harness::smoke;
use lu_app::LuConfig;

pub use workload::{SimEnv as Env, N};

/// Truncates a configuration list in smoke mode, keeping the first
/// `keep` entries (the list shapes put one of each regime up front).
fn smoke_truncate<T>(mut v: Vec<T>, keep: usize) -> Vec<T> {
    if smoke() {
        v.truncate(keep);
    }
    v
}

/// One measured/predicted pair of factorization times.
#[derive(Clone, Copy, Debug)]
pub struct Pair {
    pub measured_secs: f64,
    pub predicted_secs: f64,
}

impl Pair {
    pub fn rel_error(&self) -> f64 {
        report::rel_error(self.measured_secs, self.predicted_secs)
    }
}

/// Runs one configuration through both engines. A failing run panics with
/// the typed simulation error; sweep drivers running points through
/// [`crate::harness::run_parallel_isolated`] turn that into an error row.
pub fn run_pair(env: &Env, cfg: &LuConfig, seed: u64) -> Pair {
    let measured = env
        .measure(cfg, seed)
        .unwrap_or_else(|e| panic!("measured run failed: {e}"));
    let predicted = env
        .predict(cfg)
        .unwrap_or_else(|e| panic!("predicted run failed: {e}"));
    Pair {
        measured_secs: measured.factorization_time.as_secs_f64(),
        predicted_secs: predicted.factorization_time.as_secs_f64(),
    }
}

/// Applies a variant tag ("P", "PM", "FC" combination) to a configuration.
/// The PM sub-block size follows the paper's row/column decomposition with
/// `s = r/2`.
pub fn apply_variant(cfg: &mut LuConfig, pipelined: bool, pm: bool, fc: bool) {
    cfg.pipelined = pipelined;
    cfg.parallel_mul = if pm { Some(cfg.r / 2) } else { None };
    cfg.flow_control = if fc { Some(8) } else { None };
}

/// The variant set of Figures 8 and 9, in the paper's order.
pub fn variant_set() -> Vec<(&'static str, bool, bool, bool)> {
    vec![
        ("PM", false, true, false),
        ("P", true, false, false),
        ("P+PM", true, true, false),
        ("P+FC", true, false, true),
        ("P+PM+FC", true, true, true),
    ]
}

/// Figure 8 configurations: variants at r = 648 plus granularity changes,
/// 4 nodes. Returns (label, config).
pub fn fig8_configs(env: &Env) -> Vec<(String, LuConfig)> {
    let mut out = Vec::new();
    for (label, p, pm, fc) in smoke_truncate(variant_set(), 2) {
        let mut cfg = env.lu(648, 4);
        apply_variant(&mut cfg, p, pm, fc);
        out.push((label.to_string(), cfg));
    }
    let rs: &[usize] = if smoke() {
        &[324, 216]
    } else {
        &[324, 216, 162, 108]
    };
    for &r in rs {
        out.push((format!("r={r}"), env.lu(r, 4)));
    }
    out
}

/// Figure 9 configurations: variants at r = 324, 4 nodes.
pub fn fig9_configs(env: &Env) -> Vec<(String, LuConfig)> {
    smoke_truncate(variant_set(), 2)
        .into_iter()
        .map(|(label, p, pm, fc)| {
            let mut cfg = env.lu(324, 4);
            apply_variant(&mut cfg, p, pm, fc);
            (label.to_string(), cfg)
        })
        .collect()
}

/// Figure 10 configurations: (strategy, r, config) on 8 nodes.
pub fn fig10_configs(env: &Env) -> Vec<(String, usize, LuConfig)> {
    let mut out = Vec::new();
    let rs: &[usize] = if smoke() {
        &[216]
    } else {
        &[81, 108, 162, 216, 324]
    };
    for (strat, p, fc) in [
        ("Basic", false, false),
        ("P", true, false),
        ("P+FC", true, true),
    ] {
        for &r in rs {
            let mut cfg = env.lu(r, 8);
            apply_variant(&mut cfg, p, false, fc);
            out.push((strat.to_string(), r, cfg));
        }
    }
    out
}

/// Figure 11/12 configurations (r = 324, basic graph): the removal
/// strategies. Returns (label, config).
pub fn removal_configs(env: &Env) -> Vec<(String, LuConfig)> {
    let mut out = Vec::new();
    {
        let mut cfg = env.lu(324, 4);
        cfg.workers = 8; // eight column blocks on four nodes
        out.push(("4 nodes".to_string(), cfg));
    }
    {
        let cfg8 = {
            let mut c = env.lu(324, 8);
            c.workers = 8;
            c
        };
        out.push(("8 nodes".to_string(), cfg8));
    }
    for (label, plan) in [
        ("8 nodes, kill 4 after it. 1", vec![(1usize, 4u32)]),
        ("8 nodes, kill 4 after it. 4", vec![(4, 4)]),
        (
            "8 nodes, kill 2 after it. 2 + 2 after it. 3",
            vec![(2, 2), (3, 2)],
        ),
    ] {
        let mut cfg = env.lu(324, 8);
        cfg.workers = 8;
        cfg.removal = plan;
        out.push((label.to_string(), cfg));
    }
    smoke_truncate(out, 3)
}

/// Measurement seeds per configuration for the Figure 13 error histogram.
pub fn fig13_seeds() -> u64 {
    if smoke() {
        1
    } else {
        3
    }
}

/// Every (label, config) pair of the evaluation, for the Figure 13 error
/// sweep.
pub fn all_configs(env: &Env) -> Vec<(String, LuConfig)> {
    let mut out = Vec::new();
    for (l, c) in fig8_configs(env) {
        out.push((format!("fig8:{l}"), c));
    }
    for (l, c) in fig9_configs(env) {
        out.push((format!("fig9:{l}"), c));
    }
    for (s, r, c) in fig10_configs(env) {
        out.push((format!("fig10:{s}:r={r}"), c));
    }
    for (l, c) in removal_configs(env) {
        out.push((format!("fig11-12:{l}"), c));
    }
    out
}

/// Writes rendered output both to stdout and to `results/<name>`.
pub fn emit(name: &str, rendered: &str, csv: Option<&str>) {
    println!("{rendered}");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.txt")), rendered);
        if let Some(csv) = csv {
            let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_sets_have_paper_shapes() {
        if smoke() {
            // Counts below are the paper's full matrix; smoke mode
            // deliberately shrinks it.
            return;
        }
        let env = Env::paper();
        assert_eq!(fig8_configs(&env).len(), 9);
        assert_eq!(fig9_configs(&env).len(), 5);
        assert_eq!(fig10_configs(&env).len(), 15);
        assert_eq!(removal_configs(&env).len(), 5);
        assert_eq!(all_configs(&env).len(), 34);
        for (label, cfg) in all_configs(&env) {
            cfg.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn pair_error_is_relative() {
        let p = Pair {
            measured_secs: 100.0,
            predicted_secs: 97.0,
        };
        assert!((p.rel_error() + 0.03).abs() < 1e-12);
    }

    #[test]
    fn variant_application() {
        let env = Env::paper();
        let mut cfg = env.lu(324, 4);
        apply_variant(&mut cfg, true, true, true);
        assert!(cfg.pipelined);
        assert_eq!(cfg.parallel_mul, Some(162));
        assert_eq!(cfg.flow_control, Some(8));
        assert_eq!(cfg.variant_label(), "P+PM+FC");
    }
}
