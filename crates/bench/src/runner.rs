//! Scenario execution with a persistent on-disk result cache.
//!
//! Scenario runs are deterministic functions of `(scenario, seed, smoke
//! flag)` — the registry's whole design (see `workload::scenarios`) is that
//! two invocations with the same context emit byte-identical tables. That
//! makes their outputs cacheable: [`run_scenario`] fingerprints the
//! scenario identity and context, and on a hit replays the stored
//! rendering instead of re-simulating.
//!
//! Cache entries live under `results/cache/` (override with
//! `DVNS_CACHE_DIR`), one `<name>-<fingerprint>.txt`/`.csv` pair per entry.
//! The fingerprint covers the scenario name and summary, the expanded point
//! labels, the root seed, the smoke flag and a version salt
//! ([`CACHE_VERSION`], bumped whenever engine semantics change) — anything
//! that legitimately changes results changes the file name, so stale
//! entries are never *wrong*, only orphaned. `scenarios --no-cache`
//! bypasses the lookup (and still refreshes the entry), and the
//! `cache determinism` CI step asserts that a cache hit is byte-identical
//! to a recomputation.
//!
//! Entries are additionally **sealed** with an integrity footer (a comment
//! line carrying the cache version and a content hash). A truncated,
//! hand-edited, or otherwise corrupt entry fails the seal check and is
//! treated as a miss: the bad file is quarantined as `<entry>.corrupt`, a
//! warning goes to stderr, and the entry is recomputed and rewritten.
//!
//! Points run under per-point panic isolation
//! ([`crate::harness::run_parallel_isolated`]): a poisoned point becomes an
//! error row (`!error` in the CSV) while every other point's row stays
//! byte-identical to a clean run.

use std::hash::Hasher;
use std::path::{Path, PathBuf};

use desim::fxhash::FxHasher;
use workload::{ScenarioCtx, ScenarioSpec};

use crate::harness::run_parallel_isolated;

/// Salt folded into every cache fingerprint. Bump when simulator or
/// scenario semantics change in ways the fingerprinted inputs don't
/// capture.
///
/// v2: `RunReport` lost its `stall` field to the typed-error rework
/// (`canonical_string` changed) and rows can now carry error columns.
///
/// v3: `ServiceReport::canonical_string` grew profile-cache and what-if
/// counter lines, and server scenarios gained what-if columns.
///
/// v4: `ServiceReport::canonical_string` grew the profiling-retry counter
/// on its faults line and the circuit-breaker line.
pub const CACHE_VERSION: u32 = 4;

/// Where cache entries live: `DVNS_CACHE_DIR`, or `results/cache`.
pub fn cache_dir() -> PathBuf {
    match std::env::var("DVNS_CACHE_DIR") {
        Ok(d) if !d.trim().is_empty() => PathBuf::from(d),
        _ => PathBuf::from("results").join("cache"),
    }
}

/// How many quarantined `.corrupt` entries [`gc_corrupt_entries`] keeps
/// for post-mortem inspection. Quarantine files are only ever *written*
/// (every failed seal check renames another one into the cache directory),
/// so without a cap they accumulate unboundedly.
pub const CORRUPT_KEEP: usize = 8;

/// Deletes all but the `keep` newest quarantined `.corrupt` entries under
/// `dir`, logging each removal to stderr, and returns the removed paths.
/// Ties on modification time break by path so the survivor set is
/// deterministic. A missing or unreadable directory is a no-op.
pub fn gc_corrupt_entries(dir: &Path, keep: usize) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut corrupt: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
        .map(|e| {
            let modified = e
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            (modified, e.path())
        })
        .collect();
    if corrupt.len() <= keep {
        return Vec::new();
    }
    // Newest first; the tail past `keep` goes.
    corrupt.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut removed = Vec::new();
    for (_, path) in corrupt.split_off(keep) {
        if std::fs::remove_file(&path).is_ok() {
            eprintln!(
                "cache: removed stale quarantined entry {} (keeping the {keep} newest)",
                path.display()
            );
            removed.push(path);
        }
    }
    removed
}

/// Fingerprint of one scenario execution: everything its deterministic
/// output depends on. Point labels are included (they encode the expanded
/// configuration list, e.g. smoke truncation), point *closures* cannot be —
/// the version salt stands in for their code.
pub fn scenario_fingerprint(spec: &ScenarioSpec, ctx: &ScenarioCtx) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(CACHE_VERSION);
    h.write(spec.name.as_bytes());
    h.write(spec.summary.as_bytes());
    h.write_u64(ctx.seed);
    h.write_u8(u8::from(ctx.smoke));
    for p in (spec.points)(ctx) {
        h.write(p.label.as_bytes());
    }
    h.finish()
}

/// Outcome of [`run_scenario`]: the rendered table, its CSV, and whether
/// the result came from the cache.
pub struct ScenarioOutcome {
    /// Aligned human-readable table.
    pub text: String,
    /// Machine-readable CSV of the same rows.
    pub csv: String,
    /// `true` when both renderings were replayed from the cache.
    pub cache_hit: bool,
}

fn content_hash(content: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(content.as_bytes());
    h.finish()
}

/// Appends the integrity footer to a cache entry's content.
fn seal(content: &str) -> String {
    format!(
        "{content}# dvns-cache {CACHE_VERSION} {:016x}\n",
        content_hash(content)
    )
}

/// Validates and strips the integrity footer. `None` means the entry is
/// truncated, hand-edited, or from a different cache version — treat as a
/// miss.
fn unseal(sealed: &str) -> Option<String> {
    let body_end = sealed.trim_end_matches('\n').rfind('\n')? + 1;
    let (content, footer) = sealed.split_at(body_end);
    let mut parts = footer.trim_end().split(' ');
    if (parts.next(), parts.next()) != (Some("#"), Some("dvns-cache")) {
        return None;
    }
    if parts.next()? != CACHE_VERSION.to_string() {
        return None;
    }
    let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() || hash != content_hash(content) {
        return None;
    }
    Some(content.to_string())
}

/// Reads a sealed cache entry. A file that exists but fails the seal check
/// is quarantined as `<path>.corrupt` (a warning goes to stderr) so the
/// caller recomputes and rewrites it.
fn read_sealed(path: &Path) -> Option<String> {
    let sealed = std::fs::read_to_string(path).ok()?;
    match unseal(&sealed) {
        Some(content) => Some(content),
        None => {
            let quarantine = {
                let mut os = path.as_os_str().to_owned();
                os.push(".corrupt");
                PathBuf::from(os)
            };
            eprintln!(
                "warning: cache entry {} failed its integrity check; \
                 quarantining as {} and recomputing",
                path.display(),
                quarantine.display()
            );
            let _ = std::fs::rename(path, &quarantine);
            None
        }
    }
}

/// Runs a scenario through the harness, consulting the persistent cache.
/// With `use_cache` false the lookup is skipped but the entry is still
/// (re)written, so a later cached run can be diffed against this one.
///
/// The first call of a process garbage-collects old `.corrupt`
/// quarantine files in the cache directory (see [`gc_corrupt_entries`]).
pub fn run_scenario(spec: &ScenarioSpec, ctx: &ScenarioCtx, use_cache: bool) -> ScenarioOutcome {
    static GC: std::sync::Once = std::sync::Once::new();
    GC.call_once(|| {
        gc_corrupt_entries(&cache_dir(), CORRUPT_KEEP);
    });
    run_scenario_at(spec, ctx, use_cache, &cache_dir())
}

/// [`run_scenario`] against an explicit cache directory — the determinism
/// tests point this at a scratch directory instead of mutating
/// `DVNS_CACHE_DIR`.
pub fn run_scenario_at(
    spec: &ScenarioSpec,
    ctx: &ScenarioCtx,
    use_cache: bool,
    dir: &std::path::Path,
) -> ScenarioOutcome {
    let stem = format!("{}-{:016x}", spec.name, scenario_fingerprint(spec, ctx));
    let txt_path = dir.join(format!("{stem}.txt"));
    let csv_path = dir.join(format!("{stem}.csv"));

    if use_cache {
        if let (Some(text), Some(csv)) = (read_sealed(&txt_path), read_sealed(&csv_path)) {
            return ScenarioOutcome {
                text,
                csv,
                cache_hit: true,
            };
        }
    }

    let points = (spec.points)(ctx);
    let rows = run_parallel_isolated(&points, |_, p| (p.label.clone(), (p.run)()));
    let rows: Vec<ScenarioRow> = points
        .iter()
        .zip(rows)
        .map(|(p, r)| match r {
            Ok((label, fields)) => (label, Ok(fields)),
            Err(msg) => (p.label.clone(), Err(msg)),
        })
        .collect();
    let (text, csv) = render(spec, &rows);
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(&txt_path, seal(&text));
        let _ = std::fs::write(&csv_path, seal(&csv));
    }
    ScenarioOutcome {
        text,
        csv,
        cache_hit: false,
    }
}

/// One executed scenario row: the point's fields, or the message of the
/// panic that killed it.
pub type ScenarioRow = (String, Result<Vec<(&'static str, f64)>, String>);

/// Flattens an error message to one CSV-safe cell (no commas, no
/// newlines).
fn sanitize_error(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ").replace(',', ";")
}

/// Renders rows of `(label, fields-or-error)` as an aligned table plus a
/// CSV; field names come from the first succeeding row (every point of a
/// scenario reports the same fields). A failed point renders as an `!error`
/// row carrying its panic message instead of silently vanishing.
pub fn render(spec: &ScenarioSpec, rows: &[ScenarioRow]) -> (String, String) {
    let headers: Vec<&str> = rows
        .iter()
        .find_map(|(_, r)| {
            r.as_ref()
                .ok()
                .map(|fields| fields.iter().map(|(k, _)| *k).collect())
        })
        .unwrap_or_default();
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(spec.name.len()))
        .max()
        .unwrap_or(0);

    let mut text = format!("{} — {}\n", spec.name, spec.summary);
    let mut csv = String::from("label");
    text.push_str(&format!("{:label_w$}", ""));
    for h in &headers {
        text.push_str(&format!("  {h:>24}"));
        csv.push(',');
        csv.push_str(h);
    }
    text.push('\n');
    csv.push('\n');
    for (label, row) in rows {
        text.push_str(&format!("{label:label_w$}"));
        csv.push_str(label);
        match row {
            Ok(fields) => {
                for (key, value) in fields {
                    debug_assert!(headers.contains(key));
                    text.push_str(&format!("  {value:>24.4}"));
                    csv.push_str(&format!(",{value}"));
                }
            }
            Err(msg) => {
                text.push_str(&format!("  !error: {msg}"));
                csv.push_str(&format!(",!error,{}", sanitize_error(msg)));
            }
        }
        text.push('\n');
        csv.push('\n');
    }
    (text, csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::ScenarioPoint;

    fn toy_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "toy",
            summary: "toy scenario for runner tests",
            points: |ctx| {
                let seed = ctx.seed;
                vec![ScenarioPoint::new("only", move || {
                    vec![("seed", seed as f64), ("answer", 42.0)]
                })]
            },
        }
    }

    #[test]
    fn fingerprints_separate_contexts() {
        let spec = toy_spec();
        let a = scenario_fingerprint(&spec, &ScenarioCtx::new(false, 1));
        let b = scenario_fingerprint(&spec, &ScenarioCtx::new(false, 2));
        let c = scenario_fingerprint(&spec, &ScenarioCtx::new(true, 1));
        assert_ne!(a, b, "seed must be keyed");
        assert_ne!(a, c, "smoke flag must be keyed");
    }

    #[test]
    fn render_emits_headers_and_rows() {
        let spec = toy_spec();
        let rows = vec![(
            "only".to_string(),
            Ok(vec![("seed", 1.0), ("answer", 42.0)]),
        )];
        let (text, csv) = render(&spec, &rows);
        assert!(text.contains("toy — toy scenario"));
        assert!(text.contains("answer"));
        assert!(csv.starts_with("label,seed,answer\n"));
        assert!(csv.contains("only,1,42"));
    }

    #[test]
    fn render_keeps_error_rows_and_headers_from_first_ok_row() {
        let spec = toy_spec();
        let rows = vec![
            ("dead".to_string(), Err("boom, with a comma".to_string())),
            ("live".to_string(), Ok(vec![("answer", 42.0)])),
        ];
        let (text, csv) = render(&spec, &rows);
        assert!(csv.starts_with("label,answer\n"), "csv: {csv}");
        assert!(csv.contains("dead,!error,boom; with a comma\n"));
        assert!(csv.contains("live,42\n"));
        assert!(text.contains("!error: boom, with a comma"));
    }

    #[test]
    fn corrupt_gc_keeps_newest_and_spares_live_entries() {
        let dir = std::env::temp_dir().join(format!("dvns-corrupt-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for i in 0..12 {
            std::fs::write(dir.join(format!("entry-{i:02}.csv.corrupt")), "junk").unwrap();
        }
        std::fs::write(dir.join("live-entry.csv"), "kept").unwrap();

        let removed = gc_corrupt_entries(&dir, 8);
        assert_eq!(removed.len(), 4);
        let left: Vec<_> = std::fs::read_dir(&dir).unwrap().flatten().collect();
        assert_eq!(left.len(), 9, "8 quarantined + 1 live entry survive");
        assert!(
            dir.join("live-entry.csv").exists(),
            "non-corrupt files are spared"
        );

        // At or under the cap (and on a missing directory) it is a no-op.
        assert!(gc_corrupt_entries(&dir, 8).is_empty());
        assert!(gc_corrupt_entries(&dir.join("missing"), 8).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seal_roundtrips_and_rejects_tampering() {
        let content = "label,answer\nonly,42\n";
        let sealed = seal(content);
        assert_eq!(unseal(&sealed).as_deref(), Some(content));
        // Truncation, edits and footer-less files all fail the check.
        assert_eq!(unseal(&sealed[..sealed.len() - 2]), None);
        assert_eq!(unseal(&sealed.replace("42", "43")), None);
        assert_eq!(unseal(content), None);
        // A footer from another cache version fails even when its hash is
        // formally correct.
        let other = sealed.replace(
            &format!("# dvns-cache {CACHE_VERSION} "),
            "# dvns-cache 999 ",
        );
        assert_eq!(unseal(&other), None);
    }
}
