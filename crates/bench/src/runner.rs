//! Scenario execution with a persistent on-disk result cache.
//!
//! Scenario runs are deterministic functions of `(scenario, seed, smoke
//! flag)` — the registry's whole design (see `workload::scenarios`) is that
//! two invocations with the same context emit byte-identical tables. That
//! makes their outputs cacheable: [`run_scenario`] fingerprints the
//! scenario identity and context, and on a hit replays the stored
//! rendering instead of re-simulating.
//!
//! Cache entries live under `results/cache/` (override with
//! `DVNS_CACHE_DIR`), one `<name>-<fingerprint>.txt`/`.csv` pair per entry.
//! The fingerprint covers the scenario name and summary, the expanded point
//! labels, the root seed, the smoke flag and a version salt
//! ([`CACHE_VERSION`], bumped whenever engine semantics change) — anything
//! that legitimately changes results changes the file name, so stale
//! entries are never *wrong*, only orphaned. `scenarios --no-cache`
//! bypasses the lookup (and still refreshes the entry), and the
//! `cache determinism` CI step asserts that a cache hit is byte-identical
//! to a recomputation.

use std::hash::Hasher;
use std::path::PathBuf;

use desim::fxhash::FxHasher;
use workload::{ScenarioCtx, ScenarioSpec};

use crate::harness::run_parallel;

/// Salt folded into every cache fingerprint. Bump when simulator or
/// scenario semantics change in ways the fingerprinted inputs don't
/// capture.
pub const CACHE_VERSION: u32 = 1;

/// Where cache entries live: `DVNS_CACHE_DIR`, or `results/cache`.
pub fn cache_dir() -> PathBuf {
    match std::env::var("DVNS_CACHE_DIR") {
        Ok(d) if !d.trim().is_empty() => PathBuf::from(d),
        _ => PathBuf::from("results").join("cache"),
    }
}

/// Fingerprint of one scenario execution: everything its deterministic
/// output depends on. Point labels are included (they encode the expanded
/// configuration list, e.g. smoke truncation), point *closures* cannot be —
/// the version salt stands in for their code.
pub fn scenario_fingerprint(spec: &ScenarioSpec, ctx: &ScenarioCtx) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(CACHE_VERSION);
    h.write(spec.name.as_bytes());
    h.write(spec.summary.as_bytes());
    h.write_u64(ctx.seed);
    h.write_u8(u8::from(ctx.smoke));
    for p in (spec.points)(ctx) {
        h.write(p.label.as_bytes());
    }
    h.finish()
}

/// Outcome of [`run_scenario`]: the rendered table, its CSV, and whether
/// the result came from the cache.
pub struct ScenarioOutcome {
    /// Aligned human-readable table.
    pub text: String,
    /// Machine-readable CSV of the same rows.
    pub csv: String,
    /// `true` when both renderings were replayed from the cache.
    pub cache_hit: bool,
}

/// Runs a scenario through the harness, consulting the persistent cache.
/// With `use_cache` false the lookup is skipped but the entry is still
/// (re)written, so a later cached run can be diffed against this one.
pub fn run_scenario(spec: &ScenarioSpec, ctx: &ScenarioCtx, use_cache: bool) -> ScenarioOutcome {
    run_scenario_at(spec, ctx, use_cache, &cache_dir())
}

/// [`run_scenario`] against an explicit cache directory — the determinism
/// tests point this at a scratch directory instead of mutating
/// `DVNS_CACHE_DIR`.
pub fn run_scenario_at(
    spec: &ScenarioSpec,
    ctx: &ScenarioCtx,
    use_cache: bool,
    dir: &std::path::Path,
) -> ScenarioOutcome {
    let stem = format!("{}-{:016x}", spec.name, scenario_fingerprint(spec, ctx));
    let txt_path = dir.join(format!("{stem}.txt"));
    let csv_path = dir.join(format!("{stem}.csv"));

    if use_cache {
        if let (Ok(text), Ok(csv)) = (
            std::fs::read_to_string(&txt_path),
            std::fs::read_to_string(&csv_path),
        ) {
            return ScenarioOutcome {
                text,
                csv,
                cache_hit: true,
            };
        }
    }

    let points = (spec.points)(ctx);
    let rows = run_parallel(&points, |_, p| (p.label.clone(), (p.run)()));
    let (text, csv) = render(spec, &rows);
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(&txt_path, &text);
        let _ = std::fs::write(&csv_path, &csv);
    }
    ScenarioOutcome {
        text,
        csv,
        cache_hit: false,
    }
}

/// Renders rows of `(label, fields)` as an aligned table plus a CSV; field
/// names come from the first row (every point of a scenario reports the
/// same fields).
pub fn render(
    spec: &ScenarioSpec,
    rows: &[(String, Vec<(&'static str, f64)>)],
) -> (String, String) {
    let headers: Vec<&str> = rows
        .first()
        .map(|(_, fields)| fields.iter().map(|(k, _)| *k).collect())
        .unwrap_or_default();
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(spec.name.len()))
        .max()
        .unwrap_or(0);

    let mut text = format!("{} — {}\n", spec.name, spec.summary);
    let mut csv = String::from("label");
    text.push_str(&format!("{:label_w$}", ""));
    for h in &headers {
        text.push_str(&format!("  {h:>24}"));
        csv.push(',');
        csv.push_str(h);
    }
    text.push('\n');
    csv.push('\n');
    for (label, fields) in rows {
        text.push_str(&format!("{label:label_w$}"));
        csv.push_str(label);
        for (key, value) in fields {
            debug_assert!(headers.contains(key));
            text.push_str(&format!("  {value:>24.4}"));
            csv.push_str(&format!(",{value}"));
        }
        text.push('\n');
        csv.push('\n');
    }
    (text, csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::ScenarioPoint;

    fn toy_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "toy",
            summary: "toy scenario for runner tests",
            points: |ctx| {
                let seed = ctx.seed;
                vec![ScenarioPoint::new("only", move || {
                    vec![("seed", seed as f64), ("answer", 42.0)]
                })]
            },
        }
    }

    #[test]
    fn fingerprints_separate_contexts() {
        let spec = toy_spec();
        let a = scenario_fingerprint(&spec, &ScenarioCtx::new(false, 1));
        let b = scenario_fingerprint(&spec, &ScenarioCtx::new(false, 2));
        let c = scenario_fingerprint(&spec, &ScenarioCtx::new(true, 1));
        assert_ne!(a, b, "seed must be keyed");
        assert_ne!(a, c, "smoke flag must be keyed");
    }

    #[test]
    fn render_emits_headers_and_rows() {
        let spec = toy_spec();
        let rows = vec![("only".to_string(), vec![("seed", 1.0), ("answer", 42.0)])];
        let (text, csv) = render(&spec, &rows);
        assert!(text.contains("toy — toy scenario"));
        assert!(text.contains("answer"));
        assert!(csv.starts_with("label,seed,answer\n"));
        assert!(csv.contains("only,1,42"));
    }
}
