//! Figure reproductions registered as scenarios.
//!
//! Wraps the paper's figure configuration sets ([`crate::experiments`])
//! into [`ScenarioSpec`] entries, so the `scenarios` runner binary can list
//! and execute them next to the workload crate's built-in scenarios. Each
//! point runs one configuration through both engines ([`crate::run_pair`])
//! and reports measured/predicted factorization times plus the relative
//! prediction error.

use workload::{ScenarioCtx, ScenarioPoint, ScenarioSpec};

use crate::experiments::{
    fig10_configs, fig8_configs, fig9_configs, removal_configs, run_pair, Env,
};

fn pair_point(label: String, cfg: lu_app::LuConfig, seed: u64) -> ScenarioPoint {
    ScenarioPoint::new(label, move || {
        let env = Env::paper();
        let pair = run_pair(&env, &cfg, seed);
        vec![
            ("measured_secs", pair.measured_secs),
            ("predicted_secs", pair.predicted_secs),
            ("rel_error_pct", pair.rel_error() * 100.0),
        ]
    })
}

fn truncated<T>(mut v: Vec<T>, smoke: bool, keep: usize) -> Vec<T> {
    if smoke {
        v.truncate(keep);
    }
    v
}

// The figure points keep their historical fixed measurement seeds (the
// paper's curves are specific runs, not a seed sweep), so only the smoke
// flag of the context matters here.

fn fig8_points(ctx: &ScenarioCtx) -> Vec<ScenarioPoint> {
    let env = Env::paper();
    truncated(fig8_configs(&env), ctx.smoke, 2)
        .into_iter()
        .enumerate()
        .map(|(i, (label, cfg))| pair_point(label, cfg, 101 + i as u64))
        .collect()
}

fn fig9_points(ctx: &ScenarioCtx) -> Vec<ScenarioPoint> {
    let env = Env::paper();
    truncated(fig9_configs(&env), ctx.smoke, 2)
        .into_iter()
        .enumerate()
        .map(|(i, (label, cfg))| pair_point(label, cfg, 201 + i as u64))
        .collect()
}

fn fig10_points(ctx: &ScenarioCtx) -> Vec<ScenarioPoint> {
    let env = Env::paper();
    truncated(fig10_configs(&env), ctx.smoke, 3)
        .into_iter()
        .enumerate()
        .map(|(i, (strat, r, cfg))| pair_point(format!("{strat} r={r}"), cfg, 301 + i as u64))
        .collect()
}

fn removal_points(ctx: &ScenarioCtx) -> Vec<ScenarioPoint> {
    let env = Env::paper();
    truncated(removal_configs(&env), ctx.smoke, 3)
        .into_iter()
        .enumerate()
        .map(|(i, (label, cfg))| pair_point(label, cfg, 401 + i as u64))
        .collect()
}

/// The figure reproductions as scenarios, appended to
/// [`workload::builtin_scenarios`] by the runner binary.
pub fn figure_scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "fig8-variants",
            summary: "Figure 8: modification impact at r=648 plus granularity, 4 nodes",
            points: fig8_points,
        },
        ScenarioSpec {
            name: "fig9-variants",
            summary: "Figure 9: modification impact at r=324, 4 nodes",
            points: fig9_points,
        },
        ScenarioSpec {
            name: "fig10-granularity",
            summary: "Figure 10: granularity sweep x pipelining strategies, 8 nodes",
            points: fig10_points,
        },
        ScenarioSpec {
            name: "fig11-12-removal",
            summary: "Figures 11-12: thread-removal strategies at r=324",
            points: removal_points,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_scenarios_expand_to_points() {
        let ctx = ScenarioCtx::new(true, workload::DEFAULT_SEED);
        for s in figure_scenarios() {
            let pts = (s.points)(&ctx);
            assert!(!pts.is_empty(), "{} has no smoke points", s.name);
            for p in &pts {
                assert!(!p.label.is_empty());
            }
        }
    }
}
