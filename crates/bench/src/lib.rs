//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§7–§8).
//!
//! Each binary in `src/bin` reproduces one exhibit:
//!
//! | binary   | paper exhibit | content |
//! |----------|---------------|---------|
//! | `table1` | Table 1       | simulation cost & memory per simulation setting, plus predicted times |
//! | `fig8`   | Figure 8      | impact of modifications + granularity, 4 nodes, reference r = 648 |
//! | `fig9`   | Figure 9      | impact of modifications, 4 nodes, reference r = 324 |
//! | `fig10`  | Figure 10     | granularity sweep × pipelining strategies, 8 nodes |
//! | `fig11`  | Figure 11     | dynamic efficiency per LU iteration, with thread removal |
//! | `fig12`  | Figure 12     | total running time of removal strategies |
//! | `fig13`  | Figure 13     | histogram of prediction errors over all measurements |
//! | `all`    | —             | everything above in sequence |
//! | `scenarios` | —          | lists/runs any registered [`workload::ScenarioSpec`], figures included |
//!
//! "Measured" values come from the seeded ground-truth testbed emulator
//! (this repository's stand-in for the paper's Sun cluster — see
//! `testbed`); "predicted" values from the simulator using only the
//! published platform parameters. See `EXPERIMENTS.md` for paper-vs-
//! reproduction numbers.

pub mod chaos;
pub mod experiments;
pub mod fuzz;
pub mod harness;
pub mod journal_probe;
pub mod runner;
pub mod scenarios;

pub use chaos::{record_chaos, run_chaos, ChaosConfig, ChaosOutcome, CHAOS_SHARDS};
pub use experiments::*;
pub use fuzz::{
    first_text_divergence, fuzz, fuzz_journal_decode, fuzz_with, FuzzConfig, FuzzOutcome,
    JournalFuzzReport,
};
pub use harness::{
    panic_message, run_parallel, run_parallel_isolated, run_parallel_isolated_with,
    run_parallel_with, smoke, thread_count, time, BenchJson,
};
pub use journal_probe::{
    default_journal_path, record_reference_journal, replay_journal_file, JournalProbe,
    JournalReplay,
};
pub use runner::{
    cache_dir, gc_corrupt_entries, run_scenario, run_scenario_at, scenario_fingerprint,
    ScenarioOutcome, ScenarioRow, CACHE_VERSION, CORRUPT_KEEP,
};
pub use scenarios::figure_scenarios;
