//! Parallel experiment harness and machine-readable perf reporting.
//!
//! Every figure of the paper is a sweep over independent (configuration,
//! seed) points; the harness fans those points across cores with
//! [`std::thread::scope`] and merges results **in deterministic input
//! order**, so the parallel path emits byte-identical output to the serial
//! one. Thread count comes from `DVNS_THREADS` (default: all cores); set
//! `DVNS_THREADS=1` to force the serial path.
//!
//! [`BenchJson`] accumulates throughput/wall-clock records and writes
//! `results/BENCH_engine.json`, giving subsequent PRs a perf trajectory.
//! `DVNS_SMOKE=1` shrinks every experiment to a CI-sized matrix.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of worker threads the harness fans out over: `DVNS_THREADS` if
/// set (clamped to `1..=available cores`), otherwise all available cores.
///
/// The clamp matters: the sweep points are CPU-bound simulator runs, so
/// oversubscribing a small container (e.g. `DVNS_THREADS=4` on one core)
/// only buys scheduler churn — a 4-thread run used to come out *slower*
/// than the serial one there. An unparseable value falls back to all cores
/// (the same as unset) with a warning, instead of silently forcing the
/// serial path.
///
/// When the engine itself runs multi-threaded ([`engine_threads`] > 1),
/// each sweep point already occupies that many cores, so the per-core
/// budget shrinks accordingly: `P × T ≤ cores`. The conflict is warned
/// about once, and only the *sweep* fan-out is reduced — the engine thread
/// count is what the user is measuring and is never second-guessed here.
pub fn thread_count() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let engine = engine_threads();
    let budget = if engine > 1 {
        let b = (cores / engine).max(1);
        if b < cores {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: DVNS_ENGINE_THREADS={engine} leaves {b} of {cores} core(s) \
                     for the sweep; capping sweep threads at {b} to avoid oversubscription"
                );
            });
        }
        b
    } else {
        cores
    };
    resolve_thread_count(std::env::var("DVNS_THREADS").ok().as_deref(), budget)
}

/// Engine threads each sweep point will use ([`SimConfig::engine_threads`]
/// via `DVNS_ENGINE_THREADS`); re-exported from `workload` so the harness
/// and the experiment environment can never disagree on the parse.
///
/// [`SimConfig::engine_threads`]: dps_sim::SimConfig
pub fn engine_threads() -> usize {
    workload::engine_threads()
}

/// The pure policy behind [`thread_count`], split out for testing. `cores`
/// is the per-point thread budget: the machine's cores divided by the
/// engine threads each point consumes.
fn resolve_thread_count(var: Option<&str>, cores: usize) -> usize {
    match var {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.clamp(1, cores),
            Err(_) => {
                eprintln!(
                    "warning: DVNS_THREADS={v:?} is not an unsigned integer; \
                     using all {cores} core(s)"
                );
                cores
            }
        },
        None => cores,
    }
}

/// Whether `DVNS_SMOKE=1` asked for CI-sized experiments (tiny matrices,
/// single seeds) that exercise every code path in seconds.
pub fn smoke() -> bool {
    std::env::var("DVNS_SMOKE").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Runs `f` over every item, fanning across [`thread_count`] threads, and
/// returns the results **in input order** regardless of completion order.
///
/// `f` receives `(index, &item)`. Items are claimed from a shared atomic
/// cursor, so an expensive point never stalls the queue behind it. With one
/// thread (or one item) no threads are spawned at all — the serial path is
/// literally serial, which the determinism test exploits.
pub fn run_parallel<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_parallel_with(items, thread_count(), f)
}

/// [`run_parallel`] with an explicit thread count — the determinism test
/// compares a 1-thread run against a many-thread run of the same sweep
/// without touching the environment.
pub fn run_parallel_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an item")
        })
        .collect()
}

/// Renders a panic payload as text: the `&str`/`String` message when the
/// panic carried one (the overwhelmingly common case), a placeholder
/// otherwise.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_parallel`] with per-point panic isolation: each point runs under
/// [`std::panic::catch_unwind`], so one poisoned point yields an
/// `Err(panic message)` in its slot while every other point completes and
/// keeps its deterministic input-order position. Serial (`threads = 1`) and
/// parallel runs produce identical result vectors.
pub fn run_parallel_isolated<T, R, F>(items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_parallel_isolated_with(items, thread_count(), f)
}

/// [`run_parallel_isolated`] with an explicit thread count.
pub fn run_parallel_isolated_with<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_parallel_with(items, threads, |i, t| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, t)))
            .map_err(|p| panic_message(&*p))
    })
}

/// Times a closure, returning its result and the elapsed seconds.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), as a memory-trajectory proxy. `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One perf record: a name plus numeric fields.
struct Record {
    name: String,
    fields: Vec<(String, f64)>,
}

/// Accumulates perf records and renders `results/BENCH_engine.json`.
///
/// The JSON is hand-rolled (no serde in the workspace): a top-level object
/// with host metadata and a `benches` array of `{name, <field>: value}`
/// objects.
pub struct BenchJson {
    records: Vec<Record>,
}

impl Default for BenchJson {
    fn default() -> Self {
        Self::new()
    }
}

impl BenchJson {
    /// An empty collection.
    pub fn new() -> BenchJson {
        BenchJson {
            records: Vec::new(),
        }
    }

    /// Adds one record with arbitrary numeric fields.
    pub fn record(&mut self, name: &str, fields: &[(&str, f64)]) {
        self.records.push(Record {
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"threads\": {},\n  \"cores\": {},\n  \"smoke\": {},\n",
            thread_count(),
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            smoke(),
        ));
        if let Some(rss) = peak_rss_bytes() {
            out.push_str(&format!("  \"peak_rss_bytes\": {rss},\n"));
        }
        out.push_str("  \"benches\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!("    {{\"name\": \"{}\"", r.name));
            for (k, v) in &r.fields {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!(", \"{k}\": {}", *v as i64));
                } else {
                    out.push_str(&format!(", \"{k}\": {v:.6}"));
                }
            }
            out.push('}');
            out.push_str(if i + 1 < self.records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `results/BENCH_engine.json`, merging with any records an
    /// earlier binary of the same run already wrote (matched by name —
    /// latest wins, order preserved).
    pub fn write(&self) {
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join("BENCH_engine.json");
        let mut merged: Vec<Record> = Vec::new();
        if let Ok(prev) = std::fs::read_to_string(&path) {
            merged = parse_records(&prev);
        }
        for r in &self.records {
            merged.retain(|m| m.name != r.name);
            merged.push(Record {
                name: r.name.clone(),
                fields: r.fields.clone(),
            });
        }
        let all = BenchJson { records: merged };
        let _ = std::fs::write(&path, all.render());
    }
}

/// Minimal parser for the subset of JSON [`BenchJson::render`] emits — just
/// enough to merge records across figure binaries without serde.
fn parse_records(text: &str) -> Vec<Record> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"name\":") {
            continue;
        }
        let body = line.trim_start_matches('{').trim_end_matches('}');
        let mut name = String::new();
        let mut fields = Vec::new();
        for part in body.split(", ") {
            let Some((k, v)) = part.split_once(':') else {
                continue;
            };
            let k = k.trim().trim_matches('"');
            let v = v.trim();
            if k == "name" {
                name = v.trim_matches('"').to_string();
            } else if let Ok(num) = v.parse::<f64>() {
                fields.push((k.to_string(), num));
            }
        }
        if !name.is_empty() {
            out.push(Record { name, fields });
        }
    }
    out
}

/// Times `iters` runs of `f` after one warmup and prints `name: ns/iter`
/// (plain-text microbenchmark, replacing the former criterion harness).
pub fn bench_iters(name: &str, iters: u32, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<44} {:>12.0} ns/iter", per * 1e9);
    per
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_policy() {
        // Unset: all cores.
        assert_eq!(resolve_thread_count(None, 8), 8);
        // Explicit counts clamp to 1..=cores — no oversubscription.
        assert_eq!(resolve_thread_count(Some("1"), 8), 1);
        assert_eq!(resolve_thread_count(Some("4"), 8), 4);
        assert_eq!(resolve_thread_count(Some("64"), 8), 8);
        assert_eq!(resolve_thread_count(Some("4"), 1), 1);
        assert_eq!(resolve_thread_count(Some("0"), 8), 1);
        // Garbage behaves like unset (all cores), not like "1".
        assert_eq!(resolve_thread_count(Some("lots"), 8), 8);
        assert_eq!(resolve_thread_count(Some(""), 2), 2);
        // With a multi-threaded engine the budget passed in is
        // cores / engine_threads; the same policy then caps the sweep so
        // P × T never exceeds the machine.
        let budget = |cores: usize, engine: usize| (cores / engine).max(1);
        assert_eq!(resolve_thread_count(None, budget(8, 4)), 2);
        assert_eq!(resolve_thread_count(Some("8"), budget(8, 4)), 2);
        assert_eq!(resolve_thread_count(Some("8"), budget(1, 4)), 1);
    }

    #[test]
    fn parallel_results_arrive_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(&items, |i, &x| {
            // Vary per-item cost so completion order scrambles.
            std::thread::sleep(std::time::Duration::from_micros((x % 7) * 50));
            i as u64 + x
        });
        assert_eq!(out, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_point_is_isolated_serial_and_parallel() {
        let items: Vec<u32> = (0..16).collect();
        let run = |threads| {
            run_parallel_isolated_with(&items, threads, |_, &x| {
                assert!(x != 7, "point {x} is poisoned");
                x * 2
            })
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel, "isolation must not break determinism");
        for (i, r) in serial.iter().enumerate() {
            if i == 7 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("point 7 is poisoned"), "got: {msg}");
            } else {
                assert_eq!(*r, Ok(i as u32 * 2));
            }
        }
    }

    #[test]
    fn json_renders_and_reparses() {
        let mut j = BenchJson::new();
        j.record(
            "lu_sim",
            &[("events_per_sec", 123456.5), ("wall_secs", 2.0)],
        );
        j.record("fig10", &[("wall_secs", 10.25)]);
        let text = j.render();
        assert!(text.contains("\"name\": \"lu_sim\""));
        assert!(text.contains("\"events_per_sec\": 123456.5"));
        assert!(text.contains("\"wall_secs\": 2"));
        let back = parse_records(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "lu_sim");
        assert_eq!(back[0].fields[0].0, "events_per_sec");
        assert!((back[0].fields[0].1 - 123456.5).abs() < 1e-9);
    }

    #[test]
    fn rss_proxy_reports_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
    }
}
