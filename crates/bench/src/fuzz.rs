//! Determinism fuzzing harness: randomized schedules, one invariant.
//!
//! Under a root seed, each case draws a random small workload (LU or
//! stencil, random sizes and worker→node routing), an optional seeded
//! fault plan, and a set of engine thread counts, then asserts the
//! engine's core invariant three ways:
//!
//! 1. **Serial ≡ parallel**: the committed-event journal at every drawn
//!    thread count equals the serial journal (metadata excluded);
//! 2. **Replay**: re-executing against the recorded journal from a random
//!    prefix reproduces the stream and the canonical report exactly;
//! 3. **Pinpointer sanity**: a run perturbed with an injected commit-order
//!    tie-break swap either leaves the stream untouched (the drawn swap
//!    index never fired) or produces a divergence diagnostic that names a
//!    ticket and a virtual time.
//!
//! Failures come back as pinpointed one-line diagnostics
//! ([`dps_sim::Divergence`]), not CSV diffs. The `fuzz` binary drives this
//! under `--seed` / `--cases` / `--budget-secs`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use desim::{Journal, JournalEvent, SimDuration, SimTime};
use dps::Application;
use dps_sim::journal::replay_with_fabric;
use dps_sim::{Fabric, FaultFabric, SimConfig, SimFabric, SimResult, TimingMode};
use faults::{FaultGenConfig, FaultPlan};
use lu_app::{build_lu_app, DataMode, LuConfig};
use netmodel::NetParams;
use perfmodel::{LuCost, PlatformProfile};
use simrng::{Rng, Xoshiro256};
use stencil_app::{build_stencil_app, StencilConfig};

/// Fuzzer parameters (see the `fuzz` binary for the CLI).
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Root seed every case derives from.
    pub seed: u64,
    /// Cases to run (the binary may stop earlier on a time budget).
    pub cases: usize,
}

/// What one fuzz case exercised, for the run log.
#[derive(Debug)]
pub struct CaseReport {
    /// Case index under the root seed.
    pub index: usize,
    /// Human description of the drawn configuration.
    pub what: String,
    /// Journal length of the serial baseline.
    pub journal_len: usize,
    /// Whether the injected tie-break swap actually perturbed the stream.
    pub perturbation_fired: bool,
}

/// Outcome of a fuzz run: per-case logs and pinpointed failures.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// Successfully checked cases.
    pub cases: Vec<CaseReport>,
    /// One message per failed case — each carries the case description and
    /// the first-diverging-event diagnostic.
    pub failures: Vec<String>,
}

/// One randomly drawn workload.
enum CaseApp {
    Lu(LuConfig),
    Stencil(StencilConfig),
}

impl CaseApp {
    fn build(&self) -> Application {
        match self {
            CaseApp::Lu(cfg) => build_lu_app(cfg.clone()).0,
            CaseApp::Stencil(cfg) => build_stencil_app(cfg.clone()).0,
        }
    }

    fn describe(&self) -> String {
        match self {
            CaseApp::Lu(c) => format!(
                "lu n={} r={} nodes={} workers={}",
                c.n, c.r, c.nodes, c.workers
            ),
            CaseApp::Stencil(c) => format!(
                "stencil n={} iters={} nodes={} workers={} sync={}",
                c.n, c.iters, c.nodes, c.workers, c.synchronized
            ),
        }
    }

    fn nodes(&self) -> u32 {
        match self {
            CaseApp::Lu(c) => c.nodes,
            CaseApp::Stencil(c) => c.nodes,
        }
    }
}

fn draw_app(rng: &mut Xoshiro256) -> CaseApp {
    if rng.gen_range_u64(0, 2) == 0 {
        let r = [48usize, 64, 96][rng.gen_range_u64(0, 3) as usize];
        let k = 3 + rng.gen_range_u64(0, 3) as usize;
        let nodes = 2 + rng.gen_range_u64(0, 3) as u32;
        let mut cfg = LuConfig::new(r * k, r, nodes);
        // Routing permutation: vary the worker→node mapping by drawing
        // more workers than nodes (threads wrap around the ring).
        cfg.workers = nodes * (1 + rng.gen_range_u64(0, 2) as u32);
        cfg.mode = DataMode::Ghost;
        cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
        cfg.validate().expect("drawn LU config is valid");
        CaseApp::Lu(cfg)
    } else {
        let n = [128usize, 192, 256][rng.gen_range_u64(0, 3) as usize];
        let iters = 3 + rng.gen_range_u64(0, 3) as usize;
        let nodes = [2u32, 4][rng.gen_range_u64(0, 2) as usize];
        let mut cfg = StencilConfig::new(n, iters, nodes);
        cfg.workers = nodes * (1 + rng.gen_range_u64(0, 2) as u32);
        cfg.synchronized = rng.gen_range_u64(0, 2) == 0;
        cfg.mode = DataMode::Ghost;
        cfg.validate().expect("drawn stencil config is valid");
        CaseApp::Stencil(cfg)
    }
}

fn draw_plan(rng: &mut Xoshiro256, nodes: u32) -> Option<FaultPlan> {
    if rng.gen_range_u64(0, 2) == 0 {
        return None;
    }
    let mut gen = FaultGenConfig::quiet(nodes, SimDuration::from_secs(300));
    gen.slowdowns = rng.gen_range_u64(0, 4) as usize;
    gen.degrades = rng.gen_range_u64(0, 3) as usize;
    Some(gen.generate(rng.next_u64()))
}

fn fabric_for(plan: &Option<FaultPlan>, net: NetParams) -> Box<dyn Fabric + Send> {
    match plan {
        Some(p) => Box::new(FaultFabric::new(net, p)),
        None => Box::new(SimFabric::new(net)),
    }
}

fn base_cfg(threads: usize) -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        record_journal: true,
        engine_threads: threads,
        ..SimConfig::default()
    }
}

fn run_case_app(
    app: &CaseApp,
    plan: &Option<FaultPlan>,
    net: NetParams,
    cfg: &SimConfig,
) -> SimResult<dps_sim::RunReport> {
    let built = app.build();
    let mut fabric = fabric_for(plan, net);
    dps_sim::simulate_with_fabric(&built, fabric.as_mut(), cfg)
}

/// Runs one fuzz case; `Err` carries the pinpointed diagnostic.
fn run_case(index: usize, root_seed: u64) -> Result<CaseReport, String> {
    let mut rng =
        Xoshiro256::seed_from_u64(root_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let net = NetParams::fast_ethernet();
    let app = draw_app(&mut rng);
    let plan = draw_plan(&mut rng, app.nodes());
    let what = format!(
        "{} plan={} seed={root_seed} case={index}",
        app.describe(),
        plan.is_some()
    );
    let fail = |stage: &str, detail: String| format!("[{what}] {stage}: {detail}");

    // Serial baseline.
    let baseline = run_case_app(&app, &plan, net, &base_cfg(1))
        .map_err(|e| fail("baseline run", e.to_string()))?;
    let recorded = baseline.journal.as_ref().expect("journal recorded");

    // 1. Journal equivalence at randomized thread counts.
    for _ in 0..2 {
        let t = 2 + rng.gen_range_u64(0, 3) as usize;
        let report = run_case_app(&app, &plan, net, &base_cfg(t))
            .map_err(|e| fail("parallel run", e.to_string()))?;
        let j = report.journal.as_ref().expect("journal recorded");
        if let Some(d) = j.first_divergence(recorded) {
            return Err(fail(
                &format!("serial≡parallel at threads={t}"),
                d.to_string(),
            ));
        }
    }

    // 2. Replay from a random prefix, at a random thread count.
    let prefix = rng.gen_range_u64(0, recorded.len() as u64 + 1) as usize;
    let t = 1 + rng.gen_range_u64(0, 4) as usize;
    let built = app.build();
    let mut fabric = fabric_for(&plan, net);
    let out = replay_with_fabric(&built, fabric.as_mut(), &base_cfg(t), recorded, prefix)
        .map_err(|e| fail("replay run", e.to_string()))?;
    if let Some(d) = out.divergence {
        return Err(fail(
            &format!("replay at threads={t} prefix={prefix}"),
            d.to_string(),
        ));
    }
    if out.report.canonical_string() != baseline.canonical_string() {
        return Err(fail(
            &format!("replay at threads={t} prefix={prefix}"),
            "canonical reports differ but journals match".to_string(),
        ));
    }

    // 3. Pinpointer sanity under an injected tie-break swap.
    let mut cfg = base_cfg(1 + rng.gen_range_u64(0, 4) as usize);
    cfg.tie_break_swap = Some(rng.gen_range_u64(0, 4));
    let perturbed =
        run_case_app(&app, &plan, net, &cfg).map_err(|e| fail("perturbed run", e.to_string()))?;
    let pj = perturbed.journal.as_ref().expect("journal recorded");
    let perturbation_fired = match pj.first_divergence(recorded) {
        None => false,
        Some(d) => {
            if d.ticket.is_none() && d.field != "length" {
                return Err(fail(
                    "pinpointer",
                    format!("divergence without a ticket: {d}"),
                ));
            }
            if d.vtime_ours.or(d.vtime_theirs).is_none() {
                return Err(fail(
                    "pinpointer",
                    format!("divergence without a vtime: {d}"),
                ));
            }
            true
        }
    };

    Ok(CaseReport {
        index,
        what,
        journal_len: recorded.len(),
        perturbation_fired,
    })
}

/// Runs up to `cfg.cases` fuzz cases, invoking `progress` after each (the
/// binary uses it to log and to enforce a wall-clock budget — returning
/// `false` stops early).
pub fn fuzz_with(cfg: &FuzzConfig, mut progress: impl FnMut(&FuzzOutcome) -> bool) -> FuzzOutcome {
    let mut out = FuzzOutcome::default();
    for index in 0..cfg.cases {
        match run_case(index, cfg.seed) {
            Ok(report) => out.cases.push(report),
            Err(msg) => out.failures.push(msg),
        }
        if !progress(&out) {
            break;
        }
    }
    out
}

/// [`fuzz_with`] without a progress hook.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    fuzz_with(cfg, |_| true)
}

// ----- journal-decoder robustness fuzzing -----------------------------------

/// What [`fuzz_journal_decode`] exercised.
#[derive(Clone, Copy, Debug, Default)]
pub struct JournalFuzzReport {
    /// Bytes of the encoded reference journal.
    pub bytes: usize,
    /// Strict prefixes checked (every truncation point).
    pub truncations: usize,
    /// Seeded single-bit corruptions checked.
    pub flips: usize,
    /// Truncated entry batches checked against `append_entry_batch`.
    pub batch_truncations: usize,
}

/// Draws a seeded reference journal covering every event kind, labels and
/// metadata included.
fn draw_journal(seed: u64, entries: usize) -> Journal {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut j = Journal::new();
    j.set_meta("app", "journal-fuzz");
    j.set_meta("seed", seed.to_string());
    let labels: Vec<u32> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|l| j.intern_label(l))
        .collect();
    let mut vt = 0u64;
    for i in 0..entries {
        vt += rng.gen_range_u64(0, 1 << 20);
        let ev = match rng.gen_range_u64(0, 10) {
            0 => JournalEvent::RateWindow {
                node: rng.gen_range_u64(0, 8) as u32,
                up_bits: rng.next_u64(),
                down_bits: rng.next_u64(),
                from: vt,
                to: vt + rng.gen_range_u64(1, 1 << 30),
            },
            1 => JournalEvent::Invoke {
                ticket: i as u64,
                op: rng.gen_range_u64(0, 64) as u32,
                thread: rng.gen_range_u64(0, 64) as u32,
                obj_bytes: rng.next_u64() >> 40,
            },
            2 => JournalEvent::Step {
                job: i as u64,
                op: rng.gen_range_u64(0, 64) as u32,
                thread: rng.gen_range_u64(0, 64) as u32,
                node: rng.gen_range_u64(0, 8) as u32,
                start: vt.saturating_sub(1000),
                work: rng.gen_range_u64(0, 1 << 30),
            },
            3 => JournalEvent::Post {
                op: rng.gen_range_u64(0, 64) as u32,
                thread: rng.gen_range_u64(0, 64) as u32,
                to: rng.gen_range_u64(0, 64) as u32,
                dst_thread: rng.gen_range_u64(0, 64) as u32,
                wire_bytes: rng.next_u64() >> 40,
                local: rng.gen_range_u64(0, 2) as u32,
            },
            4 => JournalEvent::Arrive {
                to: rng.gen_range_u64(0, 64) as u32,
                thread: rng.gen_range_u64(0, 64) as u32,
                src: rng.gen_range_u64(0, 8) as u32,
                dst: rng.gen_range_u64(0, 8) as u32,
                wire_bytes: rng.next_u64() >> 40,
                start: vt.saturating_sub(500),
            },
            5 => JournalEvent::Mark {
                label: labels[rng.gen_range_u64(0, labels.len() as u64) as usize],
            },
            6 => JournalEvent::Deactivate {
                thread: rng.gen_range_u64(0, 64) as u32,
            },
            7 => JournalEvent::Release {
                op: rng.gen_range_u64(0, 64) as u32,
            },
            8 => JournalEvent::Account {
                delta: rng.next_u64() as i64 >> 20,
            },
            _ => JournalEvent::Terminate,
        };
        j.push(SimTime(vt), ev);
    }
    j
}

/// A decode attempt must return, not panic.
fn decode_no_panic(bytes: &[u8], what: &str) -> Result<Result<Journal, String>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        Journal::decode(bytes).map_err(|e| e.to_string())
    }))
    .map_err(|_| format!("{what}: decoder panicked"))
}

/// Robustness fuzz of the `desim` journal codec: the decoder must map
/// *every* truncated prefix of an encoded journal to a typed
/// [`desim::JournalDecodeError`], survive seeded single-bit corruptions
/// without panicking, and reject every truncated entry batch fed to
/// `append_entry_batch`. Returns pinpointed diagnostics on violation.
pub fn fuzz_journal_decode(seed: u64, flips: usize) -> Result<JournalFuzzReport, Vec<String>> {
    let journal = draw_journal(seed, 200);
    let bytes = journal.encode();
    let mut report = JournalFuzzReport {
        bytes: bytes.len(),
        ..JournalFuzzReport::default()
    };
    let mut failures = Vec::new();

    // Round trip sanity: the untouched encoding decodes back.
    match decode_no_panic(&bytes, "full encoding") {
        Ok(Ok(back)) => {
            if let Some(d) = back.first_divergence(&journal) {
                failures.push(format!("round trip diverged: {d}"));
            }
        }
        Ok(Err(e)) => failures.push(format!("full encoding rejected: {e}")),
        Err(msg) => failures.push(msg),
    }

    // 1. Every strict prefix is a truncation and must fail *typed*.
    for cut in 0..bytes.len() {
        report.truncations += 1;
        match decode_no_panic(&bytes[..cut], &format!("truncation at byte {cut}")) {
            Ok(Ok(_)) => failures.push(format!(
                "truncation at byte {cut} of {} decoded successfully",
                bytes.len()
            )),
            Ok(Err(_)) => {}
            Err(msg) => failures.push(msg),
        }
    }

    // 2. Seeded single-bit corruptions: a typed error or a (different)
    //    journal are both acceptable; a panic never is.
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD6E8_FEB8_6659_FD93);
    for _ in 0..flips {
        report.flips += 1;
        let i = rng.gen_range_u64(0, bytes.len() as u64) as usize;
        let bit = rng.gen_range_u64(0, 8) as u8;
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 1 << bit;
        if let Err(msg) = decode_no_panic(&corrupt, &format!("bit flip at byte {i} bit {bit}")) {
            failures.push(msg);
        }
    }

    // 3. Truncated entry batches against the incremental appender.
    let header = journal.encode_header();
    let batch = journal.encode_entry_batch(0, journal.len());
    for cut in 0..batch.len() {
        report.batch_truncations += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut j = Journal::decode(&header).expect("header decodes");
            j.append_entry_batch(&batch[..cut]).map(|_| j.len())
        }));
        match outcome {
            Ok(Ok(n)) if cut < batch.len() => {
                // A truncated batch may decode only if it is itself a
                // complete shorter batch — which the varint framing
                // forbids; reaching here with entries appended is a bug.
                if n > 0 {
                    failures.push(format!(
                        "batch truncated at byte {cut} appended {n} entries"
                    ));
                }
            }
            Ok(_) => {}
            Err(_) => failures.push(format!("batch truncation at byte {cut}: appender panicked")),
        }
    }

    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

/// Pinpoints the first difference between two texts as
/// `line L, column C: ours=... theirs=...` — the CSV-level analogue of the
/// journal's [`dps_sim::Divergence`], for outputs that are rendered bytes
/// rather than event streams. Returns `None` when the texts are equal.
pub fn first_text_divergence(ours: &str, theirs: &str) -> Option<String> {
    if ours == theirs {
        return None;
    }
    let at = ours
        .bytes()
        .zip(theirs.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or(ours.len().min(theirs.len()));
    let line = ours.as_bytes()[..at]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1;
    let col = at
        - ours.as_bytes()[..at]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap_or(0);
    let excerpt = |s: &str| {
        s.lines()
            .nth(line - 1)
            .unwrap_or("<end of text>")
            .chars()
            .take(120)
            .collect::<String>()
    };
    Some(format!(
        "first differing byte at line {line}, column {col}: ours={:?} theirs={:?}",
        excerpt(ours),
        excerpt(theirs)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_divergence_pinpoints_line_and_column() {
        assert!(first_text_divergence("a,b\nc,d\n", "a,b\nc,d\n").is_none());
        let d = first_text_divergence("a,b\nc,d\n", "a,b\nc,X\n").unwrap();
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("column 2"), "{d}");
        let d = first_text_divergence("a,b\n", "a,b\nextra\n").unwrap();
        assert!(d.contains("line 2"), "{d}");
    }

    /// The journal codec survives truncation and corruption with typed
    /// errors — the decoder-robustness satellite, seeded and quick.
    #[test]
    fn journal_codec_survives_truncation_and_bit_flips() {
        let report = fuzz_journal_decode(42, 64).unwrap_or_else(|f| panic!("{f:?}"));
        assert!(report.bytes > 500, "reference journal is non-trivial");
        assert_eq!(report.truncations, report.bytes);
        assert_eq!(report.flips, 64);
        assert!(report.batch_truncations > 0);
    }

    /// One seeded case end-to-end: the invariant holds on a real workload.
    #[test]
    fn single_fuzz_case_passes() {
        let out = fuzz(&FuzzConfig { seed: 7, cases: 1 });
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.cases.len(), 1);
        assert!(out.cases[0].journal_len > 0);
    }
}
