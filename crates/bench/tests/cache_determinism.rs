//! Property test for the persistent result cache: a cached scenario run
//! must be byte-identical to an uncached recomputation, on real registered
//! scenarios (smoke-sized), across the cache-hit and cache-miss paths.

use dps_bench::{figure_scenarios, first_text_divergence, run_scenario_at, scenario_fingerprint};
use workload::{builtin_scenarios, find_scenario, ScenarioCtx};

/// Byte-equality with a pinpointed first-difference diagnostic (line,
/// column, both excerpts) instead of a dump of two whole CSVs.
#[track_caller]
fn assert_same_text(ours: &str, theirs: &str, ctx: &str) {
    if let Some(d) = first_text_divergence(ours, theirs) {
        panic!("{ctx}: {d}");
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dvns-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cached_and_uncached_runs_emit_identical_bytes() {
    let specs = builtin_scenarios();
    let spec = find_scenario(&specs, "lu-efficiency").expect("registered");
    let ctx = ScenarioCtx::new(true, 42);
    let dir = scratch_dir("roundtrip");

    // Cold: populates the cache.
    let cold = run_scenario_at(spec, &ctx, true, &dir);
    assert!(!cold.cache_hit, "first run must compute");
    // Warm: replays the stored rendering.
    let warm = run_scenario_at(spec, &ctx, true, &dir);
    assert!(warm.cache_hit, "second run must hit the cache");
    // Bypass: recomputes from scratch.
    let bypass = run_scenario_at(spec, &ctx, false, &dir);
    assert!(!bypass.cache_hit, "--no-cache must recompute");

    assert_same_text(&cold.csv, &warm.csv, "cache replay must be byte-identical");
    assert_same_text(&cold.text, &warm.text, "cache replay text");
    assert_same_text(
        &cold.csv,
        &bypass.csv,
        "recomputation must be byte-identical",
    );
    assert_same_text(&cold.text, &bypass.text, "recomputation text");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_seeds_occupy_different_entries() {
    let specs = builtin_scenarios();
    let spec = find_scenario(&specs, "server-analytic").expect("registered");
    let dir = scratch_dir("seeds");

    let a = run_scenario_at(spec, &ScenarioCtx::new(true, 1), true, &dir);
    let b = run_scenario_at(spec, &ScenarioCtx::new(true, 2), true, &dir);
    assert!(!a.cache_hit && !b.cache_hit, "distinct seeds both compute");
    assert_ne!(
        scenario_fingerprint(spec, &ScenarioCtx::new(true, 1)),
        scenario_fingerprint(spec, &ScenarioCtx::new(true, 2)),
    );
    assert_ne!(a.csv, b.csv, "the analytic job set derives from the seed");

    // Each seed's rerun hits its own entry and replays its own bytes.
    let a2 = run_scenario_at(spec, &ScenarioCtx::new(true, 1), true, &dir);
    assert!(a2.cache_hit);
    assert_eq!(a2.csv, a.csv);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn figure_scenario_round_trips_through_the_cache() {
    let specs = figure_scenarios();
    let spec = find_scenario(&specs, "fig11-12-removal").expect("registered");
    let ctx = ScenarioCtx::new(true, 42);
    let dir = scratch_dir("figure");

    let cold = run_scenario_at(spec, &ctx, true, &dir);
    let warm = run_scenario_at(spec, &ctx, true, &dir);
    assert!(!cold.cache_hit && warm.cache_hit);
    assert_same_text(&cold.csv, &warm.csv, "figure cache replay csv");
    assert_same_text(&cold.text, &warm.text, "figure cache replay text");

    let _ = std::fs::remove_dir_all(&dir);
}
