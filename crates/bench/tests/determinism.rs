//! The parallel harness must be invisible in the output: a figure sweep
//! fanned across threads renders **byte-identical** CSV to the serial run.
//! This holds because (a) every point's simulation is seeded and
//! self-contained, and (b) [`dps_bench::run_parallel_with`] merges results
//! in input order regardless of completion order.

use cluster::ClusterSim;
use dps_bench::{run_pair, run_parallel_with, Env, Pair};
use lu_app::{DataMode, LuConfig};
use report::{Figure, Series};
use workload::{server_policies, sim_job_set, SimEnv};

/// A miniature fig-10-shaped sweep: small matrix so debug-mode tests stay
/// fast, several block sizes, fixed per-point seeds.
fn sweep_csv(threads: usize) -> String {
    let env = Env::paper();
    let points: Vec<(LuConfig, u64)> = [54usize, 72, 108, 216]
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let mut cfg = LuConfig::new(432, r, 4);
            cfg.mode = DataMode::Ghost;
            cfg.cost = Some(env.cost);
            (cfg, 900 + i as u64)
        })
        .collect();
    let pairs: Vec<Pair> = run_parallel_with(&points, threads, |_, (cfg, seed)| {
        run_pair(&env, cfg, *seed)
    });

    let mut measured = Series::new("Measurement");
    let mut predicted = Series::new("Prediction");
    for ((cfg, _), pair) in points.iter().zip(&pairs) {
        measured.push(&cfg.r.to_string(), pair.measured_secs);
        predicted.push(&cfg.r.to_string(), pair.predicted_secs);
    }
    let mut fig = Figure::new("determinism probe", "block size r");
    fig.add(measured);
    fig.add(predicted);
    fig.to_csv()
}

#[test]
fn parallel_sweep_csv_is_byte_identical_to_serial() {
    let serial = sweep_csv(1);
    let parallel = sweep_csv(4);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "parallel harness changed figure output");
    // And it is stable across repeated parallel runs, too.
    assert_eq!(parallel, sweep_csv(4));
}

/// The simulator-backed cluster server under the same contract: both
/// policies run over the sim-backed job set on one worker thread and on
/// four (the harness's explicit thread-count entry point stands in for
/// `DVNS_THREADS=1` vs `DVNS_THREADS=4` without mutating the
/// environment), and every `ServerReport` must be bit-identical.
fn server_sweep(threads: usize) -> Vec<String> {
    let points = server_policies();
    run_parallel_with(&points, threads, |_, (_, policy)| {
        let env = SimEnv::paper();
        let report = ClusterSim::new(8, *policy).run(&sim_job_set(&env));
        format!("{report:?}")
    })
}

#[test]
fn sim_backed_server_reports_are_thread_count_invariant() {
    let serial = server_sweep(1);
    let parallel = server_sweep(4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "ServerReport differs between 1 and 4 harness threads"
    );
}
