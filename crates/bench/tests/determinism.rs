//! The parallel harness must be invisible in the output: a figure sweep
//! fanned across threads renders **byte-identical** CSV to the serial run.
//! This holds because (a) every point's simulation is seeded and
//! self-contained, and (b) [`dps_bench::run_parallel_with`] merges results
//! in input order regardless of completion order.

use dps_bench::{run_pair, run_parallel_with, Env, Pair};
use lu_app::{DataMode, LuConfig};
use report::{Figure, Series};

/// A miniature fig-10-shaped sweep: small matrix so debug-mode tests stay
/// fast, several block sizes, fixed per-point seeds.
fn sweep_csv(threads: usize) -> String {
    let env = Env::paper();
    let points: Vec<(LuConfig, u64)> = [54usize, 72, 108, 216]
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let mut cfg = LuConfig::new(432, r, 4);
            cfg.mode = DataMode::Ghost;
            cfg.cost = Some(env.cost);
            (cfg, 900 + i as u64)
        })
        .collect();
    let pairs: Vec<Pair> = run_parallel_with(&points, threads, |_, (cfg, seed)| {
        run_pair(&env, cfg, *seed)
    });

    let mut measured = Series::new("Measurement");
    let mut predicted = Series::new("Prediction");
    for ((cfg, _), pair) in points.iter().zip(&pairs) {
        measured.push(&cfg.r.to_string(), pair.measured_secs);
        predicted.push(&cfg.r.to_string(), pair.predicted_secs);
    }
    let mut fig = Figure::new("determinism probe", "block size r");
    fig.add(measured);
    fig.add(predicted);
    fig.to_csv()
}

#[test]
fn parallel_sweep_csv_is_byte_identical_to_serial() {
    let serial = sweep_csv(1);
    let parallel = sweep_csv(4);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "parallel harness changed figure output");
    // And it is stable across repeated parallel runs, too.
    assert_eq!(parallel, sweep_csv(4));
}
