//! Serial ≡ parallel: the ticketed engine core must be a pure throughput
//! optimization. Every run here is executed with the plain serial engine
//! and re-executed at `engine_threads` ∈ {2, 4}, and the *entire*
//! simulation-determined output — [`RunReport::canonical_string`], sweep
//! CSV bytes — must match byte for byte, including under a seeded fault
//! plan and across checkpoint forks.
//!
//! [`RunReport::canonical_string`]: dps_sim::RunReport::canonical_string

use dps_bench::first_text_divergence;
use dps_bench::runner::render;
use dps_bench::{run_parallel_isolated_with, Env, ScenarioRow};
use dps_sim::{check_equivalent, FaultFabric, RunReport};
use faults::FaultGenConfig;
use lu_app::LuCheckpoint;
use workload::{ScenarioCtx, ScenarioPoint, ScenarioSpec};

use desim::SimDuration;

/// Thread counts the parallel runs are checked at (2 = one worker,
/// 4 = contended pool on small hosts).
const THREADS: [usize; 2] = [2, 4];

/// A paper environment at `threads` with journal recording on, so any
/// serial≢parallel failure is a pinpointed first-diverging-event
/// diagnostic rather than a canonical-string diff.
fn env_at(threads: usize) -> Env {
    let mut env = Env::paper().with_engine_threads(threads);
    env.simcfg.record_journal = true;
    env
}

#[track_caller]
fn assert_equivalent(ours: &RunReport, theirs: &RunReport, ctx: &str) {
    if let Err(msg) = check_equivalent(ours, theirs) {
        panic!("{ctx}: {msg}");
    }
}

#[test]
fn lu_reports_are_byte_identical_across_thread_counts() {
    let serial = {
        let env = env_at(1);
        env.predict(&env.lu_sized(288, 36, 4)).unwrap().report
    };
    for t in THREADS {
        let env = env_at(t);
        let run = env.predict(&env.lu_sized(288, 36, 4)).unwrap();
        assert_equivalent(
            &run.report,
            &serial,
            &format!("LU report diverged at engine_threads={t}"),
        );
    }
}

#[test]
fn stencil_reports_are_byte_identical_across_thread_counts() {
    let serial = {
        let env = env_at(1);
        env.predict_stencil(&env.stencil(192, 6, 4)).unwrap().report
    };
    for t in THREADS {
        let env = env_at(t);
        let run = env.predict_stencil(&env.stencil(192, 6, 4)).unwrap();
        assert_equivalent(
            &run.report,
            &serial,
            &format!("stencil report diverged at engine_threads={t}"),
        );
    }
}

/// A seeded fault plan perturbs rates mid-run (slowdown + link-degrade
/// windows); the FaultFabric inherits `parallel_commit_safe` from the
/// wrapped simulator fabric, so parallel runs must still match exactly.
#[test]
fn faulted_runs_are_byte_identical_across_thread_counts() {
    let mut gen = FaultGenConfig::quiet(4, SimDuration::from_secs(400));
    gen.slowdowns = 3;
    gen.degrades = 2;
    let plan = gen.generate(0xFA_17);

    let run_at = |threads: usize| {
        let env = env_at(threads);
        let mut fabric = FaultFabric::new(env.net, &plan);
        lu_app::predict_lu_with_fabric(&env.lu_sized(288, 36, 4), &mut fabric, &env.simcfg)
            .unwrap()
            .report
    };

    let serial = run_at(1);
    for t in THREADS {
        assert_equivalent(
            &run_at(t),
            &serial,
            &format!("faulted report diverged at engine_threads={t}"),
        );
    }
}

/// Fork drains the worker pipeline before snapshotting: a fork taken
/// mid-run under the parallel engine and run to completion must match the
/// uninterrupted serial run, and so must its parent.
#[test]
fn forked_continuations_are_byte_identical_across_thread_counts() {
    let serial = {
        let env = env_at(1);
        env.predict(&env.lu_sized(288, 36, 4)).unwrap().report
    };
    for t in THREADS {
        let env = env_at(t);
        let cfg = env.lu_sized(288, 36, 4);
        let mut ck = LuCheckpoint::start(&cfg, env.net, &env.simcfg).unwrap();
        assert!(ck.pause_before_barrier(2).unwrap());
        let fork = ck.fork().unwrap();
        let forked = fork.finish().unwrap().report;
        let parent = ck.finish().unwrap().report;
        assert_equivalent(
            &forked,
            &serial,
            &format!("fork diverged at engine_threads={t}"),
        );
        assert_equivalent(
            &parent,
            &serial,
            &format!("parent diverged at engine_threads={t}"),
        );
    }
}

/// A small LU sweep rendered to CSV, with each point simulated at
/// `engine_threads`: the rendered bytes must not depend on it, at any
/// harness fan-out.
fn sweep_csv(engine_threads: usize, harness_threads: usize) -> String {
    let spec = ScenarioSpec {
        name: "parallel_determinism",
        summary: "LU sweep under the ticketed parallel engine",
        points: |_ctx| {
            vec![
                ScenarioPoint::new("lu_288_4n", Vec::new),
                ScenarioPoint::new("lu_216_2n", Vec::new),
                ScenarioPoint::new("lu_144_2n", Vec::new),
            ]
        },
    };
    let configs = [(288usize, 36usize, 4u32), (216, 36, 2), (144, 36, 2)];
    let ctx = ScenarioCtx::new(true, 42);
    let points = (spec.points)(&ctx);
    let raw = run_parallel_isolated_with(&points, harness_threads, |i, p| {
        let env = Env::paper().with_engine_threads(engine_threads);
        let (n, r, nodes) = configs[i];
        let run = env.predict(&env.lu_sized(n, r, nodes)).unwrap();
        (
            p.label.clone(),
            vec![
                ("steps", run.report.steps as f64),
                ("virtual_secs", run.report.completion.as_secs_f64()),
                ("factorization_secs", run.factorization_time.as_secs_f64()),
            ],
        )
    });
    let rows: Vec<ScenarioRow> = points
        .iter()
        .zip(raw)
        .map(|(p, r)| match r {
            Ok((label, fields)) => (label, Ok(fields)),
            Err(msg) => (p.label.clone(), Err(msg)),
        })
        .collect();
    render(&spec, &rows).1
}

#[test]
fn sweep_csvs_are_byte_identical_across_thread_counts() {
    let serial = sweep_csv(1, 1);
    for t in THREADS {
        // Engine threads and harness fan-out compose: neither may leak
        // into the rendered bytes.
        if let Some(d) = first_text_divergence(&sweep_csv(t, 1), &serial) {
            panic!("CSV diverged at engine_threads={t}: {d}");
        }
        if let Some(d) = first_text_divergence(&sweep_csv(t, 2), &serial) {
            panic!("CSV diverged at engine_threads={t} under a parallel harness: {d}");
        }
    }
}
