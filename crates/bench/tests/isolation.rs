//! Panic isolation in the sweep harness: one poisoned point must become an
//! `!error` row while every other point's rendered CSV bytes stay identical
//! to a clean sweep — under serial and parallel thread counts alike.

use dps_bench::runner::render;
use dps_bench::{run_parallel_isolated_with, run_scenario_at, ScenarioRow};
use workload::{ScenarioCtx, ScenarioPoint, ScenarioSpec};

fn poisoned_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "poisoned",
        summary: "sweep with one panicking point",
        points: |ctx| {
            let seed = ctx.seed;
            vec![
                ScenarioPoint::new("alpha", move || {
                    vec![("value", seed as f64), ("twice", 2.0 * seed as f64)]
                }),
                ScenarioPoint::new("boom", || panic!("injected failure for isolation test")),
                ScenarioPoint::new("gamma", move || {
                    vec![
                        ("value", seed as f64 + 1.0),
                        ("twice", 2.0 * seed as f64 + 2.0),
                    ]
                }),
            ]
        },
    }
}

fn clean_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "poisoned",
        summary: "sweep with one panicking point",
        points: |ctx| {
            let seed = ctx.seed;
            vec![
                ScenarioPoint::new("alpha", move || {
                    vec![("value", seed as f64), ("twice", 2.0 * seed as f64)]
                }),
                ScenarioPoint::new("gamma", move || {
                    vec![
                        ("value", seed as f64 + 1.0),
                        ("twice", 2.0 * seed as f64 + 2.0),
                    ]
                }),
            ]
        },
    }
}

/// Runs the poisoned spec through the isolating harness at an explicit
/// thread count and renders it, mirroring what `run_scenario_at` does with
/// the ambient `DVNS_THREADS`.
fn sweep_csv(spec: &ScenarioSpec, ctx: &ScenarioCtx, threads: usize) -> String {
    let points = (spec.points)(ctx);
    let raw = run_parallel_isolated_with(&points, threads, |_, p| (p.label.clone(), (p.run)()));
    let rows: Vec<ScenarioRow> = points
        .iter()
        .zip(raw)
        .map(|(p, r)| match r {
            Ok((label, fields)) => (label, Ok(fields)),
            Err(msg) => (p.label.clone(), Err(msg)),
        })
        .collect();
    render(spec, &rows).1
}

#[test]
fn panicking_point_leaves_other_rows_byte_identical() {
    let ctx = ScenarioCtx::new(true, 42);
    let serial = sweep_csv(&poisoned_spec(), &ctx, 1);
    let parallel = sweep_csv(&poisoned_spec(), &ctx, 4);
    assert_eq!(
        serial, parallel,
        "isolation must not depend on thread count"
    );

    // Every non-poisoned row is byte-identical to the clean sweep's row.
    let clean = sweep_csv(&clean_spec(), &ctx, 1);
    let clean_rows: Vec<&str> = clean.lines().collect();
    let poisoned_rows: Vec<&str> = serial.lines().collect();
    assert_eq!(poisoned_rows.len(), clean_rows.len() + 1);
    assert_eq!(poisoned_rows[0], clean_rows[0], "same headers");
    assert_eq!(poisoned_rows[1], clean_rows[1], "alpha row unchanged");
    assert_eq!(poisoned_rows[3], clean_rows[2], "gamma row unchanged");
    assert!(
        poisoned_rows[2].starts_with("boom,!error,"),
        "poisoned row must carry the panic: {}",
        poisoned_rows[2]
    );
    assert!(poisoned_rows[2].contains("injected failure"));
}

#[test]
fn poisoned_scenario_still_flows_through_the_cached_runner() {
    // End to end through run_scenario_at: the error row is part of the
    // deterministic output, so it caches and replays like any other.
    let spec = poisoned_spec();
    let ctx = ScenarioCtx::new(true, 7);
    let dir = std::env::temp_dir().join(format!("dvns-poison-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = run_scenario_at(&spec, &ctx, true, &dir);
    assert!(!cold.cache_hit);
    assert!(cold.csv.contains("boom,!error,"));
    assert!(cold.csv.contains("alpha,"));
    assert!(cold.csv.contains("gamma,"));

    let warm = run_scenario_at(&spec, &ctx, true, &dir);
    assert!(warm.cache_hit, "error rows must not poison the cache");
    assert_eq!(warm.csv, cold.csv);
    assert_eq!(warm.text, cold.text);

    let _ = std::fs::remove_dir_all(&dir);
}
