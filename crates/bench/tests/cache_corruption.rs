//! Cache robustness: a truncated or hand-edited entry under the cache
//! directory must fail its integrity seal, be quarantined as
//! `<entry>.corrupt`, and count as a miss — the scenario recomputes,
//! rewrites the entry, and emits bytes identical to a clean run.

use dps_bench::{run_scenario_at, scenario_fingerprint};
use workload::{builtin_scenarios, find_scenario, ScenarioCtx};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dvns-corrupt-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn truncated_entry_is_quarantined_and_recomputed() {
    let specs = builtin_scenarios();
    let spec = find_scenario(&specs, "lu-efficiency").expect("registered");
    let ctx = ScenarioCtx::new(true, 42);
    let dir = scratch_dir("truncate");
    let stem = format!("{}-{:016x}", spec.name, scenario_fingerprint(spec, &ctx));
    let txt_path = dir.join(format!("{stem}.txt"));

    let cold = run_scenario_at(spec, &ctx, true, &dir);
    assert!(!cold.cache_hit);
    assert!(txt_path.exists(), "entry must be written");

    // Truncate the stored entry mid-file: the seal no longer matches.
    let sealed = std::fs::read_to_string(&txt_path).unwrap();
    std::fs::write(&txt_path, &sealed[..sealed.len() / 2]).unwrap();

    let recovered = run_scenario_at(spec, &ctx, true, &dir);
    assert!(!recovered.cache_hit, "a corrupt entry must miss");
    assert_eq!(recovered.text, cold.text, "recomputation matches clean run");
    assert_eq!(recovered.csv, cold.csv);

    // The bad file was preserved for inspection, not silently deleted.
    let quarantine = dir.join(format!("{stem}.txt.corrupt"));
    assert!(quarantine.exists(), "corrupt entry must be quarantined");

    // The entry was rewritten: the next run is a clean hit again.
    let warm = run_scenario_at(spec, &ctx, true, &dir);
    assert!(warm.cache_hit, "rewritten entry must hit");
    assert_eq!(warm.text, cold.text);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hand_edited_entry_fails_the_seal_even_with_footer_intact() {
    let specs = builtin_scenarios();
    let spec = find_scenario(&specs, "lu-efficiency").expect("registered");
    let ctx = ScenarioCtx::new(true, 7);
    let dir = scratch_dir("edit");
    let stem = format!("{}-{:016x}", spec.name, scenario_fingerprint(spec, &ctx));
    let csv_path = dir.join(format!("{stem}.csv"));

    let cold = run_scenario_at(spec, &ctx, true, &dir);
    assert!(!cold.cache_hit);

    // Flip one digit in the body, leaving the footer line untouched: the
    // content hash no longer matches.
    let sealed = std::fs::read_to_string(&csv_path).unwrap();
    let edited = sealed.replacen(|c: char| c.is_ascii_digit(), "9", 1);
    assert_ne!(edited, sealed, "the entry must contain a digit to flip");
    std::fs::write(&csv_path, edited).unwrap();

    let recovered = run_scenario_at(spec, &ctx, true, &dir);
    assert!(!recovered.cache_hit, "an edited entry must miss");
    assert_eq!(
        recovered.csv, cold.csv,
        "the edit must not leak into output"
    );
    assert!(dir.join(format!("{stem}.csv.corrupt")).exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn footerless_legacy_entry_counts_as_miss() {
    // A file from before sealing existed (no footer at all) is treated the
    // same way: miss, quarantine, rewrite.
    let specs = builtin_scenarios();
    let spec = find_scenario(&specs, "lu-efficiency").expect("registered");
    let ctx = ScenarioCtx::new(true, 99);
    let dir = scratch_dir("legacy");
    let stem = format!("{}-{:016x}", spec.name, scenario_fingerprint(spec, &ctx));

    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(format!("{stem}.txt")), "legacy body\n").unwrap();
    std::fs::write(dir.join(format!("{stem}.csv")), "label,x\nlegacy,1\n").unwrap();

    let run = run_scenario_at(spec, &ctx, true, &dir);
    assert!(!run.cache_hit, "footerless entries must not replay");
    assert!(!run.text.contains("legacy"));

    let _ = std::fs::remove_dir_all(&dir);
}
