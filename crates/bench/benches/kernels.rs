//! Microbenchmarks of the direct-execution kernels (what the simulator
//! really measures under direct execution). Plain timed loops; run with
//! `cargo bench --bench kernels`.

use dps_bench::harness::bench_iters;
use linalg::{gemm_sub, panel_lu, trsm_lower_unit, Matrix};
use std::hint::black_box;

fn main() {
    let a = Matrix::random(128, 128, 1);
    let b_m = Matrix::random(128, 128, 2);
    bench_iters("gemm_sub_128", 20, || {
        let mut c_m = Matrix::zeros(128, 128);
        gemm_sub(&mut c_m, &a, &b_m);
        black_box(c_m.max_abs());
    });

    let p_src = Matrix::random(512, 64, 3);
    bench_iters("panel_lu_512x64", 20, || {
        let mut p = p_src.clone();
        let mut piv = Vec::new();
        panel_lu(&mut p, &mut piv);
        black_box(piv.len());
    });

    let a = Matrix::random(128, 128, 4);
    let l11 = Matrix::from_fn(128, 128, |i, j| {
        if i == j {
            1.0
        } else if i > j {
            a[(i, j)]
        } else {
            0.0
        }
    });
    let rhs = Matrix::random(128, 128, 5);
    bench_iters("trsm_lower_unit_128", 20, || {
        let mut x = rhs.clone();
        trsm_lower_unit(&l11, &mut x);
        black_box(x.max_abs());
    });
}
