//! Microbenchmarks of the direct-execution kernels (what the simulator
//! really measures under direct execution).

use criterion::{criterion_group, criterion_main, Criterion};
use linalg::{gemm_sub, panel_lu, trsm_lower_unit, Matrix};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let a = Matrix::random(128, 128, 1);
    let b_m = Matrix::random(128, 128, 2);
    c.bench_function("gemm_sub_128", |b| {
        b.iter(|| {
            let mut c_m = Matrix::zeros(128, 128);
            gemm_sub(&mut c_m, &a, &b_m);
            black_box(c_m.max_abs());
        })
    });
}

fn bench_panel(c: &mut Criterion) {
    let a = Matrix::random(512, 64, 3);
    c.bench_function("panel_lu_512x64", |b| {
        b.iter(|| {
            let mut p = a.clone();
            let mut piv = Vec::new();
            panel_lu(&mut p, &mut piv);
            black_box(piv.len());
        })
    });
}

fn bench_trsm(c: &mut Criterion) {
    let a = Matrix::random(128, 128, 4);
    let l11 = Matrix::from_fn(128, 128, |i, j| {
        if i == j {
            1.0
        } else if i > j {
            a[(i, j)]
        } else {
            0.0
        }
    });
    let rhs = Matrix::random(128, 128, 5);
    c.bench_function("trsm_lower_unit_128", |b| {
        b.iter(|| {
            let mut x = rhs.clone();
            trsm_lower_unit(&l11, &mut x);
            black_box(x.max_abs());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_panel, bench_trsm
}
criterion_main!(benches);
