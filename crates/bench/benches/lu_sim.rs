//! End-to-end simulation throughput: how fast the simulator replays an LU
//! factorization under PDEXEC/NOALLOC (the paper's Table 1 "simulation
//! running time" in microbenchmark form). Plain timed loops; run with
//! `cargo bench --bench lu_sim`.

use dps_bench::harness::bench_iters;
use dps_bench::Env;
use std::hint::black_box;

fn main() {
    let env = Env::paper();
    bench_iters("predict_lu_1296_r162_4n_basic", 10, || {
        let mut cfg = env.lu(162, 4);
        cfg.n = 1296;
        black_box(env.predict(&cfg).unwrap().factorization_time);
    });
    bench_iters("predict_lu_1296_r162_4n_pipelined_fc", 10, || {
        let mut cfg = env.lu(162, 4);
        cfg.n = 1296;
        cfg.pipelined = true;
        cfg.flow_control = Some(8);
        black_box(env.predict(&cfg).unwrap().factorization_time);
    });
    let mut seed = 0u64;
    bench_iters("measure_lu_1296_r162_4n_testbed", 10, || {
        let mut cfg = env.lu(162, 4);
        cfg.n = 1296;
        seed += 1;
        black_box(env.measure(&cfg, seed).unwrap().factorization_time);
    });
}
