//! End-to-end simulation throughput: how fast the simulator replays an LU
//! factorization under PDEXEC/NOALLOC (the paper's Table 1 "simulation
//! running time" in microbenchmark form).

use criterion::{criterion_group, criterion_main, Criterion};
use dps_bench::Env;
use std::hint::black_box;

fn bench_lu_prediction(c: &mut Criterion) {
    let env = Env::paper();
    c.bench_function("predict_lu_1296_r162_4n_basic", |b| {
        let mut cfg = env.lu(162, 4);
        cfg.n = 1296;
        b.iter(|| black_box(env.predict(&cfg).factorization_time))
    });
    c.bench_function("predict_lu_1296_r162_4n_pipelined_fc", |b| {
        let mut cfg = env.lu(162, 4);
        cfg.n = 1296;
        cfg.pipelined = true;
        cfg.flow_control = Some(8);
        b.iter(|| black_box(env.predict(&cfg).factorization_time))
    });
    c.bench_function("measure_lu_1296_r162_4n_testbed", |b| {
        let mut cfg = env.lu(162, 4);
        cfg.n = 1296;
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(env.measure(&cfg, seed).factorization_time)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lu_prediction
}
criterion_main!(benches);
