//! Microbenchmarks of the simulation substrate: event queue, progress
//! sharing, and the flow-level network model. Plain timed loops (no
//! external bench harness); run with `cargo bench --bench engine`.

use desim::{EventQueue, ProgressSet, SimTime};
use dps_bench::harness::bench_iters;
use netmodel::{NetParams, Network, NodeId, Sharing};
use std::hint::black_box;

fn bench_event_queue() {
    bench_iters("event_queue_push_pop_10k", 20, || {
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule(SimTime(x % 1_000_000), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, v)) = q.pop() {
            debug_assert!(t >= last);
            last = t;
            black_box(v);
        }
    });
    bench_iters("event_queue_churn_cancel_heavy_10k", 20, || {
        // The engine's pattern: most scheduled events are cancelled before
        // firing (every rate change invalidates a completion).
        let mut q = EventQueue::new();
        let mut live = Vec::new();
        for round in 0..10u64 {
            for i in 0..1_000u64 {
                live.push(q.schedule(SimTime(round * 1_000 + i), i));
            }
            for id in live.drain(..).take(900) {
                q.cancel(id);
            }
            while let Some((_, v)) = q.pop() {
                black_box(v);
            }
        }
    });
}

fn bench_progress_set() {
    bench_iters("progress_set_64_jobs_sweep", 20, || {
        let mut ps: ProgressSet<u32> = ProgressSet::new();
        for i in 0..64u32 {
            ps.insert(SimTime::ZERO, i, 1000.0 + i as f64);
            ps.set_rate(SimTime::ZERO, i, 1.0 + (i % 7) as f64);
        }
        let mut done = 0;
        while let Some((_, t)) = ps.earliest_completion() {
            done += ps.take_finished(t).len();
            if done >= 64 {
                break;
            }
        }
        black_box(done);
    });
}

fn bench_network() {
    for (name, sharing) in [
        ("network_drain_512_flows", Sharing::EqualSplit),
        ("network_drain_512_flows_maxmin", Sharing::MaxMin),
    ] {
        bench_iters(name, 20, || {
            let mut net = Network::new(NetParams::fast_ethernet(), sharing);
            for i in 0..512u32 {
                net.start_flow(
                    SimTime::ZERO,
                    NodeId(i % 8),
                    NodeId(8 + i % 8),
                    10_000 + (i as u64) * 100,
                );
            }
            while let Some(t) = net.next_event_time() {
                black_box(net.advance(t).len());
            }
        });
    }
}

fn main() {
    bench_event_queue();
    bench_progress_set();
    bench_network();
}
