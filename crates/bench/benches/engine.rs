//! Microbenchmarks of the simulation substrate: event queue, progress
//! sharing, and the flow-level network model.

use criterion::{criterion_group, criterion_main, Criterion};
use desim::{EventQueue, ProgressSet, SimTime};
use netmodel::{NetParams, Network, NodeId, Sharing};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut x: u64 = 0x9E3779B97F4A7C15;
            for i in 0..10_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.schedule(SimTime(x % 1_000_000), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, v)) = q.pop() {
                debug_assert!(t >= last);
                last = t;
                black_box(v);
            }
        })
    });
}

fn bench_progress_set(c: &mut Criterion) {
    c.bench_function("progress_set_64_jobs_sweep", |b| {
        b.iter(|| {
            let mut ps: ProgressSet<u32> = ProgressSet::new();
            for i in 0..64u32 {
                ps.insert(SimTime::ZERO, i, 1000.0 + i as f64);
                ps.set_rate(SimTime::ZERO, i, 1.0 + (i % 7) as f64);
            }
            let mut done = 0;
            while let Some((_, t)) = ps.earliest_completion() {
                done += ps.take_finished(t).len();
                if done >= 64 {
                    break;
                }
            }
            black_box(done);
        })
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network_drain_512_flows", |b| {
        b.iter(|| {
            let mut net = Network::new(NetParams::fast_ethernet(), Sharing::EqualSplit);
            for i in 0..512u32 {
                net.start_flow(
                    SimTime::ZERO,
                    NodeId(i % 8),
                    NodeId(8 + i % 8),
                    10_000 + (i as u64) * 100,
                );
            }
            while let Some(t) = net.next_event_time() {
                black_box(net.advance(t).len());
            }
        })
    });
    c.bench_function("network_drain_512_flows_maxmin", |b| {
        b.iter(|| {
            let mut net = Network::new(NetParams::fast_ethernet(), Sharing::MaxMin);
            for i in 0..512u32 {
                net.start_flow(
                    SimTime::ZERO,
                    NodeId(i % 8),
                    NodeId(8 + i % 8),
                    10_000 + (i as u64) * 100,
                );
            }
            while let Some(t) = net.next_event_time() {
                black_box(net.advance(t).len());
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_progress_set, bench_network
}
criterion_main!(benches);
