//! Labeled data series and multi-series "figures" (for Figure 8-12-style
//! output): rendered as aligned columns with an optional bar visual.

/// One named series of (x-label, value) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Display name of the series.
    pub name: String,
    /// (x-label, value) points in insertion order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty instance.
    pub fn new(name: &str) -> Series {
        Series {
            name: name.to_string(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: &str, y: f64) -> &mut Self {
        self.points.push((x.to_string(), y));
        self
    }

    /// Value at an x label, if present.
    pub fn get(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|(l, _)| l == x).map(|&(_, v)| v)
    }
}

/// A figure: several series over a common x axis.
pub struct Figure {
    title: String,
    x_label: String,
    series: Vec<Series>,
}

impl Figure {
    /// Creates an empty instance.
    pub fn new(title: &str, x_label: &str) -> Figure {
        Figure {
            title: title.to_string(),
            x_label: x_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    /// The figure's series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Union of x labels in first-appearance order.
    fn x_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !labels.contains(x) {
                    labels.push(x.clone());
                }
            }
        }
        labels
    }

    /// Aligned text rendering: one row per x value, one column per series.
    pub fn render(&self) -> String {
        let labels = self.x_labels();
        let mut out = format!("== {} ==\n", self.title);
        let mut widths: Vec<usize> = vec![self.x_label.len()];
        for s in &self.series {
            widths.push(s.name.len().max(8));
        }
        for l in &labels {
            widths[0] = widths[0].max(l.len());
        }
        out.push_str(&format!("{:<w$}", self.x_label, w = widths[0]));
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", s.name, w = widths[i + 1]));
        }
        out.push('\n');
        for l in &labels {
            out.push_str(&format!("{:<w$}", l, w = widths[0]));
            for (i, s) in self.series.iter().enumerate() {
                match s.get(l) {
                    Some(v) => out.push_str(&format!("  {:>w$.3}", v, w = widths[i + 1])),
                    None => out.push_str(&format!("  {:>w$}", "-", w = widths[i + 1])),
                }
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering with the x axis as the first column.
    pub fn to_csv(&self) -> String {
        let labels = self.x_labels();
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for l in &labels {
            out.push_str(l);
            for s in &self.series {
                out.push(',');
                if let Some(v) = s.get(l) {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        let mut a = Series::new("Measurement");
        a.push("P", 1.02).push("P+FC", 1.05);
        let mut b = Series::new("Prediction");
        b.push("P", 1.03).push("P+FC", 1.04).push("PM", 0.9);
        let mut f = Figure::new("Impact of modifications", "variant");
        f.add(a).add(b);
        f
    }

    #[test]
    fn render_includes_all_points() {
        let s = fig().render();
        assert!(s.contains("Impact of modifications"));
        assert!(s.contains("P+FC"));
        assert!(s.contains("1.050"));
        // Missing point rendered as '-'.
        let pm_line = s.lines().find(|l| l.starts_with("PM")).unwrap();
        assert!(pm_line.contains('-'));
        assert!(pm_line.contains("0.900"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "variant,Measurement,Prediction");
        assert_eq!(lines.len(), 4); // header + P, P+FC, PM
        assert!(lines[3].starts_with("PM,,0.9"));
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("x");
        s.push("a", 1.0);
        assert_eq!(s.get("a"), Some(1.0));
        assert_eq!(s.get("b"), None);
    }
}
