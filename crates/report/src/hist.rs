//! Histograms (for the Figure 13 prediction-error distribution).

/// A fixed-bin-width histogram over a symmetric range around zero.
pub struct Histogram {
    bin_width: f64,
    /// Bin `i` covers `[lo + i·w, lo + (i+1)·w)`.
    lo: f64,
    counts: Vec<u64>,
    values: Vec<f64>,
}

impl Histogram {
    /// Bins covering `[-range, +range]` with the given width.
    pub fn symmetric(range: f64, bin_width: f64) -> Histogram {
        assert!(range > 0.0 && bin_width > 0.0);
        let n = (2.0 * range / bin_width).ceil() as usize;
        Histogram {
            bin_width,
            lo: -range,
            counts: vec![0; n],
            values: Vec::new(),
        }
    }

    /// Adds a series.
    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        self.values.push(v);
        let idx = ((v - self.lo) / self.bin_width).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of samples recorded.
    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.values.len() as u64
    }

    /// Fraction of samples with `|v| <= bound`.
    pub fn fraction_within(&self, bound: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.iter().filter(|v| v.abs() <= bound).count();
        n as f64 / self.values.len() as f64
    }

    /// Mean absolute sample value.
    pub fn mean_abs(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().map(|v| v.abs()).sum::<f64>() / self.values.len() as f64
    }

    /// Text rendering: one row per bin with a proportional bar.
    pub fn render(&self, title: &str) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = format!("== {title} ({} samples) ==\n", self.total());
        for (i, &c) in self.counts.iter().enumerate() {
            let a = self.lo + i as f64 * self.bin_width;
            let bar_len = (c * 40 / max) as usize;
            out.push_str(&format!(
                "{:>6.1}% .. {:>6.1}% | {:<40} {}\n",
                a * 100.0,
                (a + self.bin_width) * 100.0,
                "#".repeat(bar_len),
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_fractions() {
        let mut h = Histogram::symmetric(0.16, 0.04);
        for v in [-0.15, -0.05, -0.01, 0.0, 0.02, 0.03, 0.05, 0.11] {
            h.add(v);
        }
        assert_eq!(h.total(), 8);
        assert!((h.fraction_within(0.04) - 4.0 / 8.0).abs() < 1e-12);
        assert!((h.fraction_within(0.06) - 6.0 / 8.0).abs() < 1e-12);
        assert_eq!(h.fraction_within(0.2), 1.0);
    }

    #[test]
    fn out_of_range_clamps_to_edge_bins() {
        let mut h = Histogram::symmetric(0.1, 0.05);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.total(), 2);
        let s = h.render("clamped");
        assert!(s.contains("2 samples"));
    }

    #[test]
    fn render_shows_bars() {
        let mut h = Histogram::symmetric(0.08, 0.04);
        for _ in 0..10 {
            h.add(0.01);
        }
        h.add(-0.05);
        let s = h.render("errors");
        let dense = s.lines().find(|l| l.ends_with("10")).unwrap();
        assert!(dense.contains("########"));
    }

    #[test]
    fn mean_abs_error() {
        let mut h = Histogram::symmetric(1.0, 0.1);
        h.add(0.1);
        h.add(-0.3);
        assert!((h.mean_abs() - 0.2).abs() < 1e-12);
    }
}
