//! Aligned text tables (for Table 1-style output).

/// A simple column-aligned table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty instance.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Borrows one row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// CSV rendering (header + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["setting", "time [s]", "memory"]);
        t.row(&["direct".into(), "193.0".into(), "127".into()]);
        t.row(&["pdexec".into(), "9.1".into(), "124".into()]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("Demo"));
        assert!(lines[1].starts_with("setting"));
        // Both data rows align the second column.
        let pos1 = lines[3].find("193.0").unwrap();
        let pos2 = lines[4].find("9.1").unwrap();
        assert_eq!(pos1, pos2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["hello, world".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\",2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
