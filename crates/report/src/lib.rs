//! Experiment reporting: aligned tables, data series and histograms that
//! regenerate the paper's tables and figures as text, plus CSV output for
//! external plotting.

#![warn(missing_docs)]

pub mod hist;
pub mod series;
pub mod table;

pub use hist::Histogram;
pub use series::{Figure, Series};
pub use table::Table;

/// Relative prediction error `(predicted − measured) / measured`.
pub fn rel_error(measured: f64, predicted: f64) -> f64 {
    (predicted - measured) / measured
}

/// Relative performance improvement as the paper defines it: reference time
/// over the variant's time (>1 is faster than the reference).
pub fn improvement(reference_secs: f64, variant_secs: f64) -> f64 {
    reference_secs / variant_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_error_signs() {
        assert!((rel_error(100.0, 104.0) - 0.04).abs() < 1e-12);
        assert!((rel_error(100.0, 92.0) + 0.08).abs() < 1e-12);
    }

    #[test]
    fn improvement_definition() {
        assert_eq!(improvement(200.0, 100.0), 2.0);
        assert_eq!(improvement(100.0, 200.0), 0.5);
    }
}
