//! Umbrella crate for the DVNS workspace — a reproduction of
//! *"A simulator for parallel applications with dynamically varying compute
//! node allocation"* (Schaeli, Gerlach, Hersch; IPDPS 2006).
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can `use dvns::…`. See the individual crates for the
//! actual functionality:
//!
//! * [`desim`] — discrete-event core (virtual time, event queue, sharing).
//! * [`netmodel`] — flow-level star-topology network model.
//! * [`dps`] — the Dynamic Parallel Schedules framework.
//! * [`sim`] (`dps-sim`) — the paper's direct-execution simulator.
//! * [`testbed`] — ground-truth cluster emulator + native OS-thread runner.
//! * [`perfmodel`] — kernel cost models and platform profiles.
//! * [`linalg`] — dense matrix kernels for the LU evaluation application.
//! * [`lu_app`] — block LU factorization as a DPS application.
//! * [`stencil_app`] — Jacobi heat-diffusion stencil with neighborhood
//!   halo exchanges (second evaluation workload).
//! * [`faults`] — deterministic fault schedules ([`faults::FaultPlan`]),
//!   seeded generation and checkpoint/restart cost modeling, injected into
//!   the network, the engine and the cluster server.
//! * [`cluster`] — dynamic allocation policies and the malleable cluster
//!   server with its [`cluster::Workload`] trait.
//! * [`cluster_svc`] — long-lived sharded multi-tenant job service on top
//!   of the cluster layer: fair-share admission, cross-shard elastic
//!   recovery and million-job synthetic streams, byte-identical across
//!   shard counts.
//! * [`workload`] — simulator-backed workloads ([`workload::LuWorkload`],
//!   [`workload::StencilWorkload`]), the shared [`workload::SimEnv`]
//!   experiment wiring and the scenario registry.
//! * [`report`] — experiment tables, series and histograms.
//!
//! [`fxhash`] (from `desim`) is also re-exported directly: the event
//! queue, the cluster server's profile cache and the workload keys all
//! hash through the same deterministic `FxHasher`.

pub use cluster;
pub use cluster_svc;
pub use desim;
pub use desim::fxhash;
pub use dps;
pub use dps_sim as sim;
pub use faults;
pub use linalg;
pub use lu_app;
pub use netmodel;
pub use perfmodel;
pub use report;
pub use stencil_app;
pub use testbed;
pub use workload;
