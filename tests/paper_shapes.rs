//! Cross-crate integration tests asserting the *shapes* of the paper's
//! results: who wins, by roughly what factor, and where crossovers fall.
//! Absolute seconds are calibration-dependent; these relations are not.

use dvns::desim::SimDuration;
use dvns::lu_app::{measure_lu, predict_lu, DataMode, LuConfig};
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::{SimConfig, TimingMode};
use dvns::testbed::TestbedParams;

fn simcfg() -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        ..SimConfig::default()
    }
}

fn lu(r: usize, nodes: u32) -> LuConfig {
    let mut cfg = LuConfig::new(2592, r, nodes);
    cfg.mode = DataMode::Ghost;
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    cfg
}

fn predicted_secs(cfg: &LuConfig) -> f64 {
    predict_lu(cfg, NetParams::fast_ethernet(), &simcfg())
        .unwrap()
        .factorization_time
        .as_secs_f64()
}

#[test]
fn serial_model_matches_paper_anchor() {
    let cost = LuCost::new(PlatformProfile::ultrasparc_ii_440());
    let t = cost.serial_lu(2592, 216).as_secs_f64();
    assert!(
        (170.0..205.0).contains(&t),
        "serial model {t:.1}s vs paper 185.1s"
    );
}

#[test]
fn prediction_tracks_testbed_measurement() {
    // The headline validation: simulator vs ground truth within a few %.
    let cfg = lu(216, 8);
    let p = predicted_secs(&cfg);
    let m = measure_lu(&cfg, TestbedParams::sun_cluster(), 42, &simcfg())
        .unwrap()
        .factorization_time
        .as_secs_f64();
    let err = ((p - m) / m).abs();
    assert!(
        err < 0.12,
        "prediction error {:.1}% (paper: >95% within 12%)",
        err * 100.0
    );
}

#[test]
fn granularity_dominates_variant_tweaks() {
    // Figure 8's lesson: changing r from 648 to 216 brings far more than
    // pipelining/flow-control at r=648.
    let coarse = predicted_secs(&lu(648, 4));
    let mid = predicted_secs(&lu(216, 4));
    assert!(
        coarse / mid > 2.0,
        "granularity gain only {:.2}x (paper ≈ 3.4x)",
        coarse / mid
    );
    let mut p_fc = lu(648, 4);
    p_fc.pipelined = true;
    p_fc.flow_control = Some(8);
    let tweaked = predicted_secs(&p_fc);
    let tweak_gain = coarse / tweaked;
    assert!(
        tweak_gain < 1.4,
        "variant tweaks at r=648 gained {tweak_gain:.2}x, expected modest"
    );
}

#[test]
fn granularity_sweep_has_interior_optimum() {
    // Figure 8/10: the best block size lies strictly between the extremes.
    let times: Vec<(usize, f64)> = [648, 324, 216, 162, 108]
        .into_iter()
        .map(|r| (r, predicted_secs(&lu(r, 4))))
        .collect();
    let best = times
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty");
    assert!(
        best.0 == 216 || best.0 == 162,
        "optimum at r={} (paper: 162)",
        best.0
    );
    // Both extremes are worse than the optimum.
    assert!(times[0].1 > best.1 * 1.2);
    assert!(times[4].1 > best.1 * 1.05);
}

#[test]
fn pipelining_matters_more_on_eight_nodes() {
    // Figure 9 vs Figure 10: the pipelining + flow-control improvements
    // become more significant with more nodes (at granularities fine
    // enough to feed the pipeline).
    let gain = |r: usize, nodes: u32, fc: Option<usize>| {
        let basic = predicted_secs(&lu(r, nodes));
        let mut p = lu(r, nodes);
        p.pipelined = true;
        p.flow_control = fc;
        basic / predicted_secs(&p)
    };
    let pfc4 = gain(162, 4, Some(8));
    let pfc8 = gain(162, 8, Some(8));
    assert!(
        pfc8 > pfc4,
        "P+FC gain on 8 nodes ({pfc8:.3}) must exceed 4 nodes ({pfc4:.3})"
    );
    let p4 = gain(108, 4, None);
    let p8 = gain(108, 8, None);
    assert!(
        p8 > p4,
        "P gain at r=108 on 8 nodes ({p8:.3}) vs 4 ({p4:.3})"
    );
    assert!(pfc8 > 1.3, "P+FC must substantially help on 8 nodes");
}

#[test]
fn flow_control_improves_pipelined_graph_on_eight_nodes() {
    let mut p = lu(162, 8);
    p.pipelined = true;
    let t_p = predicted_secs(&p);
    let mut pfc = p.clone();
    pfc.flow_control = Some(8);
    let t_pfc = predicted_secs(&pfc);
    assert!(
        t_pfc < t_p,
        "P+FC ({t_pfc:.1}s) must beat P ({t_p:.1}s) — paper Figure 10"
    );
}

#[test]
fn parallel_submul_hurts_balanced_but_helps_coarse() {
    // Figure 9: PM slows the well-balanced r=324 case; Figure 8: it helps
    // the imbalanced r=648 one.
    let base324 = predicted_secs(&lu(324, 4));
    let mut pm324 = lu(324, 4);
    pm324.parallel_mul = Some(162);
    assert!(
        predicted_secs(&pm324) > base324,
        "PM must slow down the balanced r=324 case"
    );

    let base648 = predicted_secs(&lu(648, 4));
    let mut pm648 = lu(648, 4);
    pm648.parallel_mul = Some(324);
    assert!(
        predicted_secs(&pm648) < base648,
        "PM must improve the imbalanced r=648 case"
    );
}

#[test]
fn dynamic_efficiency_decays_and_four_nodes_beat_eight() {
    // Figure 11: efficiency decreases over iterations; 4 nodes are ~1.5x
    // more efficient at the start and ~2x by iteration 6.
    let mut c4 = lu(324, 4);
    c4.workers = 8;
    let mut c8 = lu(324, 8);
    c8.workers = 8;
    let r4 = predict_lu(&c4, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let r8 = predict_lu(&c8, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let e4 = dvns::lu_app::iteration_times(&r4.report);
    let e8 = dvns::lu_app::iteration_times(&r8.report);
    assert_eq!(e4.len(), 8);
    assert_eq!(e8.len(), 8);
    // Decay: first iteration clearly more efficient than iteration 7.
    assert!(
        e8[0].2 > e8[6].2 * 1.5,
        "efficiency must decay over iterations"
    );
    // 4-node runs are more efficient throughout.
    let ratio_start = e4[0].2 / e8[0].2;
    let ratio_it6 = e4[5].2 / e8[5].2;
    assert!(
        (1.3..2.2).contains(&ratio_start),
        "iteration-1 efficiency ratio {ratio_start:.2} (paper 60.2/37.6 ≈ 1.6)"
    );
    assert!(
        ratio_it6 > 1.7,
        "iteration-6 efficiency ratio {ratio_it6:.2} (paper ≈ 2)"
    );
}

#[test]
fn thread_removal_lands_between_static_allocations() {
    // Figure 12: kill-4-after-iteration-1 costs little over the full 8-node
    // run while approaching the 4-node allocation's footprint.
    let mut c4 = lu(324, 4);
    c4.workers = 8;
    let mut c8 = lu(324, 8);
    c8.workers = 8;
    let mut kill = c8.clone();
    kill.removal = vec![(1, 4)];

    let t4 = predicted_secs(&c4);
    let t8 = predicted_secs(&c8);
    let tk = predicted_secs(&kill);
    assert!(t8 < tk, "removal cannot beat the full allocation");
    assert!(
        tk < t4 * 1.02,
        "removal run ({tk:.1}s) must not exceed the 4-node run ({t4:.1}s)"
    );
    // The cost of freeing half the machine for ~75% of the runtime stays
    // below 20% (the paper's Figure 12 band).
    assert!(
        tk / t8 < 1.20,
        "kill-4-after-1 costs {:.0}% over static 8 nodes",
        (tk / t8 - 1.0) * 100.0
    );
}

#[test]
fn later_removal_costs_less() {
    let mut base = lu(324, 8);
    base.workers = 8;
    let t8 = predicted_secs(&base);
    let mut early = base.clone();
    early.removal = vec![(1, 4)];
    let mut late = base.clone();
    late.removal = vec![(4, 4)];
    let te = predicted_secs(&early);
    let tl = predicted_secs(&late);
    assert!(
        tl < te,
        "killing after iteration 4 ({tl:.1}s) must cost less than after 1 ({te:.1}s)"
    );
    assert!(
        tl / t8 < 1.08,
        "late removal is nearly free (paper Figure 12)"
    );
}

#[test]
fn faster_network_helps_until_compute_bound() {
    let cfg = lu(162, 8);
    let fast_eth = predicted_secs(&cfg);
    let gig = predict_lu(&cfg, NetParams::gigabit_ethernet(), &simcfg())
        .unwrap()
        .factorization_time
        .as_secs_f64();
    let ideal = predict_lu(&cfg, NetParams::ideal(), &simcfg())
        .unwrap()
        .factorization_time
        .as_secs_f64();
    assert!(gig < fast_eth, "gigabit must beat fast ethernet");
    assert!(ideal <= gig, "free network is a lower bound");
    assert!(
        (gig - ideal) / ideal < 0.25,
        "at gigabit the run should be nearly compute bound"
    );
}

#[test]
fn flow_control_bounds_queues_and_window_has_an_optimum() {
    // Paper §2/Figure 6: flow control "prevents split and stream operations
    // from filling the data object queue of the destination threads" and
    // improves interleaving — but an over-tight window serializes.
    let mut nofc = lu(162, 8);
    nofc.pipelined = true;
    let mut fc8 = nofc.clone();
    fc8.flow_control = Some(8);
    let mut fc2 = nofc.clone();
    fc2.flow_control = Some(2);

    let r_nofc = predict_lu(&nofc, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let r_fc8 = predict_lu(&fc8, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let r_fc2 = predict_lu(&fc2, NetParams::fast_ethernet(), &simcfg()).unwrap();

    assert!(
        r_fc8.report.max_queue_len < r_nofc.report.max_queue_len,
        "flow control must shrink the worst queue: {} vs {}",
        r_fc8.report.max_queue_len,
        r_nofc.report.max_queue_len
    );
    let t_nofc = r_nofc.factorization_time.as_secs_f64();
    let t_fc8 = r_fc8.factorization_time.as_secs_f64();
    let t_fc2 = r_fc2.factorization_time.as_secs_f64();
    assert!(t_fc8 < t_nofc, "a reasonable window improves pipelining");
    assert!(t_fc2 > t_nofc, "an over-tight window serializes the stream");
}
