//! Crash-recovery property at server scale: recovering from **every**
//! committed WAL prefix — clean frame boundaries and seeded torn tails —
//! reproduces the uninterrupted run byte-for-byte, quiet and under the
//! seeded cross-shard fault plan.
//!
//! This is the cross-crate, full-topology version of the unit property in
//! `cluster_svc::recovery`: the stream is the `server-scale` synthetic
//! load (20 000 jobs in release, scaled down in debug so `cargo test`
//! stays quick), the topology is the 8-cell × 8-node four-tenant config,
//! and the fault plan crashes nodes across shard boundaries.

use dvns::cluster_svc::{
    ClusterService, CrashPlan, DurabilitySpec, ServeOptions, ServiceOutcome, WriteAheadLog,
};
use dvns::faults::FaultPlan;
use dvns::workload::{server_scale_config, server_scale_load, server_scale_plan};

const SEED: u64 = 42;
const SHARDS: u32 = 2;

/// Server-scale smoke in release; small enough for debug `cargo test`.
fn jobs() -> u64 {
    if cfg!(debug_assertions) {
        2_000
    } else {
        20_000
    }
}

/// Group-commit cadence sized so the WAL has a handful of frames at
/// either job count — every-prefix recovery then re-serves the stream
/// roughly ten times, not hundreds.
fn spec() -> DurabilitySpec {
    DurabilitySpec::group_commit(jobs())
}

fn fault_plan(faulted: bool) -> FaultPlan {
    if faulted {
        server_scale_plan(jobs(), SEED)
    } else {
        FaultPlan::none()
    }
}

fn service() -> ClusterService {
    ClusterService::new(server_scale_config(SHARDS)).expect("valid scale config")
}

fn durable_baseline(faulted: bool) -> (ServiceOutcome, WriteAheadLog) {
    service()
        .serve_durable(
            server_scale_load(jobs(), SEED),
            &fault_plan(faulted),
            &ServeOptions::default(),
            &spec(),
        )
        .expect("durable scale run")
}

fn recover_and_compare(baseline: &ServiceOutcome, wal_bytes: &[u8], faulted: bool, what: &str) {
    let (out, crash) = service()
        .recover(
            server_scale_load(jobs(), SEED),
            &fault_plan(faulted),
            &ServeOptions::default(),
            wal_bytes,
        )
        .unwrap_or_else(|e| panic!("recovery failed ({what}): {e}"));
    assert_eq!(
        out.report.canonical_string(),
        baseline.report.canonical_string(),
        "canonical report diverged: {what}"
    );
    let (j, bj) = (
        out.journal.as_ref().expect("recovered journal"),
        baseline.journal.as_ref().expect("baseline journal"),
    );
    if let Some(d) = j.first_divergence(bj) {
        panic!("decision stream diverged ({what}): {d}");
    }
    assert_eq!(j.encode(), bj.encode(), "journal bytes diverged: {what}");
    let replay = out.replay.expect("resumed runs report replay stats");
    assert_eq!(replay.prefix_entries, crash.recovered_entries, "{what}");
    assert_eq!(replay.matched, replay.prefix_entries, "{what}");
}

fn every_prefix_recovers(faulted: bool) {
    let (baseline, wal) = durable_baseline(faulted);
    assert!(
        wal.frames() >= 3,
        "the property needs several frames, got {}",
        wal.frames()
    );
    // Every clean frame boundary — including "only the header survived".
    for k in 1..=wal.frames() {
        recover_and_compare(
            &baseline,
            wal.frame_prefix(k),
            faulted,
            &format!("faulted={faulted}, clean prefix of {k}/{} frames", wal.frames()),
        );
    }
    // Seeded torn tails: the in-flight frame is half-written with a bit
    // flipped; recovery must truncate it at the checksum, never replay it.
    for crash_seed in 0..3u64 {
        let plan = CrashPlan::new(crash_seed.wrapping_add(SEED));
        recover_and_compare(
            &baseline,
            &plan.crashed_bytes(&wal),
            faulted,
            &format!("faulted={faulted}, torn crash seed {}", plan.seed),
        );
    }
}

#[test]
fn quiet_server_scale_recovers_from_every_committed_prefix() {
    every_prefix_recovers(false);
}

#[test]
fn faulted_server_scale_recovers_from_every_committed_prefix() {
    every_prefix_recovers(true);
}
