//! Cross-engine integration tests: the simulator, the testbed emulator and
//! the native runner all execute the *same* application value, and agree
//! where they must.

use std::time::Duration;

use dvns::desim::SimDuration;
use dvns::lu_app::{build_lu_app, measure_lu, predict_lu, DataMode, LuConfig};
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::{SimConfig, TimingMode};
use dvns::testbed::TestbedParams;

fn simcfg() -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        ..SimConfig::default()
    }
}

fn small_lu() -> LuConfig {
    let mut cfg = LuConfig::new(768, 96, 4);
    cfg.mode = DataMode::Ghost;
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    cfg
}

#[test]
fn calm_testbed_reproduces_simulator_exactly() {
    // With the testbed's true parameters equal to the simulator's measured
    // ones and every noise source disabled, the two engines are the same
    // machine: predictions must agree to the nanosecond.
    let cfg = small_lu();
    let net = NetParams::fast_ethernet();
    let predicted = predict_lu(&cfg, net, &simcfg()).unwrap();
    let calm = measure_lu(&cfg, TestbedParams::calm(net), 7, &simcfg()).unwrap();
    assert_eq!(
        predicted.report.completion, calm.report.completion,
        "calm testbed must equal the simulator exactly"
    );
    assert_eq!(predicted.report.steps, calm.report.steps);
}

#[test]
fn noisy_testbed_differs_but_stays_close() {
    let cfg = small_lu();
    let predicted = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let measured = measure_lu(&cfg, TestbedParams::sun_cluster(), 3, &simcfg()).unwrap();
    assert_ne!(predicted.report.completion, measured.report.completion);
    let p = predicted.factorization_time.as_secs_f64();
    let m = measured.factorization_time.as_secs_f64();
    assert!(((p - m) / m).abs() < 0.15, "p={p:.2}s m={m:.2}s");
}

#[test]
fn testbed_seeds_vary_measurements() {
    let cfg = small_lu();
    let a = measure_lu(&cfg, TestbedParams::sun_cluster(), 1, &simcfg()).unwrap();
    let b = measure_lu(&cfg, TestbedParams::sun_cluster(), 2, &simcfg()).unwrap();
    let c = measure_lu(&cfg, TestbedParams::sun_cluster(), 1, &simcfg()).unwrap();
    assert_ne!(
        a.report.completion, b.report.completion,
        "seeds must differ"
    );
    assert_eq!(
        a.report.completion, c.report.completion,
        "same seed, same run"
    );
}

#[test]
fn all_variants_run_on_both_engines() {
    for (p, fc, pm) in [
        (false, None, None),
        (true, None, None),
        (false, None, Some(48)),
        (true, Some(6), None),
        (true, Some(6), Some(48)),
    ] {
        let mut cfg = small_lu();
        cfg.pipelined = p;
        cfg.flow_control = fc;
        cfg.parallel_mul = pm;
        let pr = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
        let me = measure_lu(&cfg, TestbedParams::sun_cluster(), 5, &simcfg()).unwrap();
        assert!(
            pr.report.terminated && me.report.terminated,
            "{:?}",
            (p, fc, pm)
        );
    }
}

#[test]
fn native_runner_agrees_with_simulator_on_results() {
    // Real data, every variant feature at once, executed natively (true OS
    // concurrency) and in virtual time: identical factorizations.
    let mut cfg = LuConfig::new(96, 16, 3);
    cfg.workers = 6;
    cfg.mode = DataMode::Real;
    cfg.pipelined = true;
    cfg.flow_control = Some(4);
    cfg.cost = Some(LuCost::new(PlatformProfile::modern_x86()));

    let sim_run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let sim_res = sim_run.residual.expect("verified");

    let (app, sh) = build_lu_app(cfg.clone());
    let native = dvns::testbed::run_native(&app, Duration::from_secs(120));
    assert!(native.terminated);
    let out = sh.result.lock().unwrap().take().expect("output");
    let a = dvns::linalg::Matrix::random(cfg.n, cfg.n, cfg.seed);
    let f = dvns::linalg::blocked::LuFactors {
        lu: out.lu,
        pivots: out.pivots,
    };
    let native_res = dvns::linalg::lu_residual(&a, &f);
    assert!(sim_res < 1e-10 && native_res < 1e-10);
}

#[test]
fn simulator_memory_modes_ordered() {
    // Table 1 relation: Real/Alloc peaks ≫ Ghost peak.
    let mut cfg = small_lu();
    cfg.mode = DataMode::Alloc;
    let alloc = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    cfg.mode = DataMode::Ghost;
    let ghost = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    assert!(
        alloc.report.mem_peak_bytes > 4 * ghost.report.mem_peak_bytes,
        "alloc {} vs ghost {}",
        alloc.report.mem_peak_bytes,
        ghost.report.mem_peak_bytes
    );
    // The ghost run still knows how many bytes crossed the network.
    assert_eq!(
        alloc.report.net.payload_bytes,
        ghost.report.net.payload_bytes
    );
}

#[test]
fn max_min_sharing_ablation_changes_little_here() {
    // The paper's equal-share assumption vs true max-min fairness: for the
    // LU traffic pattern the difference is small — evidence the simple
    // model suffices (DESIGN.md ablation).
    let cfg = small_lu();
    let net = NetParams::fast_ethernet();
    let eq = predict_lu(&cfg, net, &simcfg()).unwrap();
    let mut fabric = dvns::sim::SimFabric::with_sharing(net, dvns::netmodel::Sharing::MaxMin);
    let (app, _sh) = build_lu_app(cfg.clone());
    let mm = dvns::sim::simulate_with_fabric(&app, &mut fabric, &simcfg()).unwrap();
    let a = eq.report.completion.as_secs_f64();
    let b = mm.completion.as_secs_f64();
    assert!(
        ((a - b) / a).abs() < 0.05,
        "equal-share {a:.2}s vs max-min {b:.2}s"
    );
}

#[test]
fn straggler_node_slows_the_whole_factorization() {
    // Heterogeneous cluster: node 2's links run at a quarter speed. Both
    // engines see it; the LU (whose multiplications round-robin over every
    // node) slows down, and the simulator still tracks the testbed.
    let cfg = small_lu();
    let net = NetParams::fast_ethernet();
    let cripple = |fabric: &mut dvns::sim::SimFabric| {
        fabric.set_node_capacity(
            dvns::netmodel::NodeId(2),
            net.up_bytes_per_sec / 4.0,
            net.down_bytes_per_sec / 4.0,
        );
    };

    let (app, _sh) = build_lu_app(cfg.clone());
    let mut uniform = dvns::sim::SimFabric::new(net);
    let base = dvns::sim::simulate_with_fabric(&app, &mut uniform, &simcfg()).unwrap();

    let (app2, _sh2) = build_lu_app(cfg.clone());
    let mut slow = dvns::sim::SimFabric::new(net);
    cripple(&mut slow);
    let degraded = dvns::sim::simulate_with_fabric(&app2, &mut slow, &simcfg()).unwrap();

    assert!(
        degraded.completion > base.completion,
        "a straggler must slow the run: {} vs {}",
        degraded.completion,
        base.completion
    );
    let ratio = degraded.completion.as_secs_f64() / base.completion.as_secs_f64();
    assert!(
        ratio < 4.0,
        "one slow link must not quarter the whole run ({ratio:.2}x)"
    );
}
