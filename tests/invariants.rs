//! Engine invariants that must hold regardless of calibration: work
//! conservation, monotonicity in platform resources, timing-mode
//! relationships.

use dvns::desim::SimDuration;
use dvns::lu_app::{predict_lu, DataMode, LuConfig};
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::{SimConfig, TimingMode};

fn simcfg() -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        ..SimConfig::default()
    }
}

fn lu(r: usize, nodes: u32) -> LuConfig {
    let mut cfg = LuConfig::new(1296, r, nodes);
    cfg.mode = DataMode::Ghost;
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    cfg
}

#[test]
fn total_work_is_conserved_across_allocations() {
    // Under pure charges, the computation performed is a property of the
    // algorithm, not of the schedule: the same charges execute no matter
    // how many nodes share them.
    let runs: Vec<_> = [1u32, 2, 4, 8]
        .into_iter()
        .map(|nodes| {
            let mut cfg = lu(162, nodes);
            cfg.workers = 8; // fixed decomposition, varying hardware
            predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap()
        })
        .collect();
    let works: Vec<f64> = runs
        .iter()
        .map(|r| r.report.total_cpu_work.as_secs_f64())
        .collect();
    for w in &works[1..] {
        let rel = (w - works[0]).abs() / works[0];
        assert!(rel < 1e-9, "work not conserved: {works:?}");
    }
    // ...while wall time strictly improves with nodes.
    let times: Vec<f64> = runs
        .iter()
        .map(|r| r.factorization_time.as_secs_f64())
        .collect();
    for pair in times.windows(2) {
        assert!(pair[1] < pair[0], "more nodes must be faster: {times:?}");
    }
}

#[test]
fn steps_and_transfers_are_schedule_invariant() {
    // The number of atomic steps and data transfers depends on the
    // decomposition, not on the network speed — up to the termination
    // instant: the engine stops the moment `terminate` executes, so a
    // handful of steps/transfers co-completing right then may or may not be
    // counted depending on event ordering.
    let cfg = lu(162, 4);
    let slow = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    let fast = predict_lu(&cfg, NetParams::gigabit_ethernet(), &simcfg()).unwrap();
    let d_steps = slow.report.steps.abs_diff(fast.report.steps);
    assert!(d_steps <= 8, "step counts diverged: {d_steps}");
    let d_flows = slow
        .report
        .net
        .flows_started
        .abs_diff(fast.report.net.flows_started);
    assert!(d_flows <= 8, "transfer counts diverged: {d_flows}");
}

#[test]
fn completion_is_monotone_in_bandwidth() {
    let cfg = lu(108, 8);
    let mut last = f64::MAX;
    for mbps in [25.0, 50.0, 100.0, 400.0, 10_000.0] {
        let mut p = NetParams::fast_ethernet();
        p.up_bytes_per_sec = mbps * 1e6 / 8.0;
        p.down_bytes_per_sec = p.up_bytes_per_sec;
        let t = predict_lu(&cfg, p, &simcfg())
            .unwrap()
            .factorization_time
            .as_secs_f64();
        assert!(
            t <= last * (1.0 + 1e-9),
            "slower at {mbps} Mb/s: {t:.2}s after {last:.2}s"
        );
        last = t;
    }
}

#[test]
fn completion_is_monotone_in_latency() {
    let cfg = lu(108, 8);
    let mut last = 0.0;
    for lat_us in [0u64, 50, 200, 1000, 5000] {
        let mut p = NetParams::fast_ethernet();
        p.latency = SimDuration::from_micros(lat_us);
        let t = predict_lu(&cfg, p, &simcfg())
            .unwrap()
            .factorization_time
            .as_secs_f64();
        assert!(
            t >= last * (1.0 - 1e-9),
            "faster at {lat_us}us latency: {t:.2}s after {last:.2}s"
        );
        last = t;
    }
}

#[test]
fn substantial_step_overhead_increases_predictions() {
    // NB: *small* overhead changes can legitimately go either way — greedy
    // FIFO schedules exhibit Graham's anomalies, where lengthening a task
    // shortens the makespan. A 10 ms per-step overhead (~30% of total load
    // here) must dominate any anomaly.
    let cfg = lu(108, 8);
    let mut cheap = simcfg();
    cheap.step_overhead = SimDuration::ZERO;
    let mut costly = simcfg();
    costly.step_overhead = SimDuration::from_millis(10);
    let t0 = predict_lu(&cfg, NetParams::fast_ethernet(), &cheap)
        .unwrap()
        .factorization_time
        .as_secs_f64();
    let t1 = predict_lu(&cfg, NetParams::fast_ethernet(), &costly)
        .unwrap()
        .factorization_time
        .as_secs_f64();
    assert!(
        t1 > t0 * 1.05,
        "dispatch overhead must cost time: {t0} vs {t1}"
    );
}

#[test]
fn calibrated_direct_execution_stays_near_measured() {
    // The paper scopes calibration to "parallel programs that perform the
    // same operations repeatedly" — the Jacobi stencil is exactly that
    // (every sweep is identical), unlike LU whose panels shrink. Measured
    // vs first-n-calibrated predictions must agree within measurement
    // noise, and the calibrated run must still verify.
    use dvns::stencil_app::{predict_stencil, StencilConfig};
    let mut cfg = StencilConfig::new(128, 12, 4);
    cfg.mode = DataMode::Real;
    cfg.cost = None; // pure direct execution
    let mut measured_cfg = simcfg();
    measured_cfg.timing = TimingMode::Measured;
    let mut calibrated_cfg = simcfg();
    calibrated_cfg.timing = TimingMode::Calibrated { warmup: 3 };

    // Both sides time real host execution, so a CPU spike from a
    // concurrently running test binary can blow the tolerance on a loaded
    // machine; take the best of a few attempts before declaring divergence.
    let mut last = (0.0, 0.0, f64::INFINITY);
    for _ in 0..3 {
        let m = predict_stencil(&cfg, NetParams::ideal(), &measured_cfg)
            .unwrap()
            .sweep_time
            .as_secs_f64();
        let c_run = predict_stencil(&cfg, NetParams::ideal(), &calibrated_cfg).unwrap();
        let c = c_run.sweep_time.as_secs_f64();
        assert!(c_run.error.unwrap() < 1e-12, "calibrated run must verify");
        let rel = ((m - c) / m).abs();
        if rel < 0.6 {
            return;
        }
        if rel < last.2 {
            last = (m, c, rel);
        }
    }
    panic!(
        "calibrated ({:.4}s) diverged from measured ({:.4}s) by {:.0}% on every attempt",
        last.1,
        last.0,
        last.2 * 100.0
    );
}

#[test]
fn tighter_flow_control_never_speeds_things_up() {
    let mk = |w: Option<usize>| {
        let mut cfg = lu(108, 8);
        cfg.pipelined = true;
        cfg.flow_control = w;
        predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg())
            .unwrap()
            .factorization_time
            .as_secs_f64()
    };
    let t1 = mk(Some(1));
    let t4 = mk(Some(4));
    let t16 = mk(Some(16));
    assert!(
        t1 >= t4 && t4 >= t16 * 0.8,
        "window ordering: {t1} {t4} {t16}"
    );
}
