//! Property tests for snapshot/fork simulation: a run paused at an
//! arbitrary point, forked, and driven to completion must produce a
//! `RunReport` byte-identical (modulo host wall time) to an uninterrupted
//! run of the same configuration. This is the guarantee the shared-prefix
//! sweep planner and the bench result cache are built on.

use dvns::desim::{SimDuration, SimTime};
use dvns::lu_app::{predict_lu, DataMode, LuCheckpoint, LuConfig};
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::{check_equivalent, RunReport, SimConfig, TimingMode};
use simrng::{Rng, Xoshiro256};

fn simcfg() -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        // Journals turn any fork≢fresh failure into a pinpointed
        // first-diverging-event diagnostic instead of a canonical diff.
        record_journal: true,
        ..SimConfig::default()
    }
}

/// Asserts run equivalence with the journal pinpointer: a failure names
/// the first diverging event (ticket, vtime, op, field).
#[track_caller]
fn assert_equivalent(ours: &RunReport, theirs: &RunReport, ctx: &str) {
    if let Err(msg) = check_equivalent(ours, theirs) {
        panic!("{ctx}: {msg}");
    }
}

fn random_cfg(rng: &mut Xoshiro256) -> LuConfig {
    let r = [64usize, 96, 128][rng.gen_range_u64(0, 3) as usize];
    let k = 4 + rng.gen_range_u64(0, 4) as usize;
    let nodes = 2 + rng.gen_range_u64(0, 3) as u32;
    let mut cfg = LuConfig::new(r * k, r, nodes);
    cfg.workers = nodes + rng.gen_range_u64(0, 2) as u32 * nodes;
    cfg.mode = if rng.gen_range_u64(0, 2) == 0 {
        DataMode::Ghost
    } else {
        DataMode::Alloc
    };
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    cfg.validate().expect("generated config is valid");
    cfg
}

/// Random configurations, random checkpoint times: both the fork and the
/// paused original must finish byte-identical to a fresh full run.
#[test]
fn fork_at_random_times_matches_fresh_run() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_C0DE);
    let net = NetParams::fast_ethernet();
    for _ in 0..4 {
        let cfg = random_cfg(&mut rng);
        let fresh = predict_lu(&cfg, net, &simcfg()).unwrap();
        let span = fresh.report.completion.as_nanos();
        for _ in 0..2 {
            let t = SimTime(rng.gen_range_u64(1, span));
            let mut base = LuCheckpoint::start(&cfg, net, &simcfg()).unwrap();
            base.advance_until(t).unwrap();
            let forked = base.fork().expect("prediction modes fork");
            // Finish the fork before the original: divergent branch order
            // must not matter.
            let a = forked.finish().unwrap();
            let b = base.finish().unwrap();
            let ctx = format!(
                "n={} r={} nodes={} workers={} mode={:?} t={}ns",
                cfg.n, cfg.r, cfg.nodes, cfg.workers, cfg.mode, t.0
            );
            assert_equivalent(&a.report, &fresh.report, &format!("fork ({ctx})"));
            assert_equivalent(&b.report, &fresh.report, &format!("original ({ctx})"));
            assert_eq!(a.factorization_time, fresh.factorization_time, "{ctx}");
        }
    }
}

/// Chained forking: one shared prefix advanced barrier to barrier, each
/// branch rewriting the coordinator's removal plan, must reproduce fresh
/// runs of the corresponding removal configurations exactly.
#[test]
fn removal_rewritten_forks_match_fresh_removal_runs() {
    let mut base_cfg = LuConfig::new(768, 96, 8);
    base_cfg.mode = DataMode::Ghost;
    base_cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    let net = NetParams::fast_ethernet();

    // Ascending first-removal iterations so one prefix serves all plans.
    let plans: Vec<Vec<(usize, u32)>> = vec![
        vec![(2, 2)],
        vec![(2, 1), (5, 2)],
        vec![(3, 4)],
        vec![(5, 7)],
    ];

    let mut base = LuCheckpoint::start(&base_cfg, net, &simcfg()).unwrap();
    for plan in &plans {
        let after = plan[0].0;
        assert!(
            base.pause_before_barrier(after).unwrap(),
            "run ended before barrier {after}"
        );
        let mut branch = base.fork().expect("ghost mode forks");
        branch.set_removal_plan(plan.clone());
        let run = branch.finish().unwrap();

        let mut fresh_cfg = base_cfg.clone();
        fresh_cfg.removal = plan.clone();
        fresh_cfg.validate().expect("removal plan is valid");
        let fresh = predict_lu(&fresh_cfg, net, &simcfg()).unwrap();
        assert_equivalent(&run.report, &fresh.report, &format!("plan {plan:?}"));
    }

    // The shared prefix itself, driven to the end, is the no-removal run.
    let run = base.finish().unwrap();
    let fresh = predict_lu(&base_cfg, net, &simcfg()).unwrap();
    assert_equivalent(&run.report, &fresh.report, "no-removal base");
}

/// The same fork≡fresh property for the stencil application, random
/// configurations and checkpoint times.
#[test]
fn stencil_forks_match_fresh_runs() {
    use dvns::stencil_app::{predict_stencil, StencilCheckpoint, StencilConfig};
    let mut rng = Xoshiro256::seed_from_u64(0xBAD5_EED5);
    let net = NetParams::fast_ethernet();
    for _ in 0..3 {
        let mut cfg = StencilConfig::new(
            256 * (1 + rng.gen_range_u64(0, 2) as usize),
            3 + rng.gen_range_u64(0, 4) as usize,
            2u32 << rng.gen_range_u64(0, 3),
        );
        cfg.synchronized = rng.gen_range_u64(0, 2) == 0;
        cfg.validate().expect("generated config is valid");
        let fresh = predict_stencil(&cfg, net, &simcfg()).unwrap();
        let t = SimTime(rng.gen_range_u64(1, fresh.report.completion.as_nanos()));
        let mut base = StencilCheckpoint::start(&cfg, net, &simcfg()).unwrap();
        base.advance_until(t).unwrap();
        let forked = base.fork().expect("ghost mode forks");
        let a = forked.finish().unwrap();
        let b = base.finish().unwrap();
        let ctx = format!(
            "n={} iters={} nodes={} sync={} t={}ns",
            cfg.n, cfg.iters, cfg.nodes, cfg.synchronized, t.0
        );
        assert_equivalent(&a.report, &fresh.report, &format!("fork ({ctx})"));
        assert_equivalent(&b.report, &fresh.report, &format!("original ({ctx})"));
    }
}

/// Real mode must refuse to fork (its branches would share result
/// channels) rather than silently corrupt output.
#[test]
fn real_mode_refuses_to_fork() {
    let mut cfg = LuConfig::new(256, 64, 2);
    cfg.mode = DataMode::Real;
    let mut ck = LuCheckpoint::start(&cfg, NetParams::fast_ethernet(), &simcfg()).unwrap();
    ck.advance_until(SimTime(u64::MAX / 2)).unwrap();
    match ck.fork() {
        Err(e) => assert!(e.is_fork_refused(), "unexpected error: {e}"),
        Ok(_) => panic!("Real mode forks must be refused"),
    }
}
