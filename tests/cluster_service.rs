//! Cross-crate determinism of the sharded cluster service with *real*
//! simulator-backed workloads: the committed report must be byte-identical
//! across shard counts AND across the parallel engine's thread count,
//! plain and under a seeded fault plan.

use std::sync::Arc;

use dvns::cluster::SchedulePolicy;
use dvns::cluster_svc::{
    ClusterService, JobSpec, ServeOptions, ServiceConfig, SyntheticLoad, TenantSpec,
};
use dvns::desim::{SimDuration, SimTime};
use dvns::faults::{CheckpointSpec, FaultEvent, FaultKind, FaultPlan};
use dvns::workload::SimEnv;

fn cfg(shards: u32) -> ServiceConfig {
    ServiceConfig::new(
        8,
        2,
        shards,
        SchedulePolicy::Malleable {
            min_efficiency: 0.5,
        },
    )
    .with_tenant(TenantSpec::new("lu", 2))
    .with_tenant(TenantSpec::new("mix", 1))
}

/// A small stream mixing simulator-backed LU jobs (profiled through
/// dps-sim, whose engine honours `DVNS_ENGINE_THREADS`) with analytic
/// filler from the synthetic generator.
fn stream(env: &SimEnv) -> Vec<JobSpec> {
    let lu_small = Arc::new(env.lu_workload(env.lu_sized(96, 12, 8)));
    let lu_tiny = Arc::new(env.lu_workload(env.lu_sized(64, 8, 8)));
    let mut jobs = vec![
        JobSpec::boxed(0, SimTime::ZERO, 8, lu_small.clone()),
        JobSpec::boxed(0, SimTime(50_000_000), 4, lu_tiny.clone()),
        JobSpec::boxed(0, SimTime(100_000_000), 6, lu_small),
        JobSpec::boxed(0, SimTime(150_000_000), 8, lu_tiny),
    ];
    let filler = SyntheticLoad::new(
        40,
        1,
        8,
        SimDuration::from_millis(80),
        SimDuration::from_millis(500),
        9,
    )
    .map(|mut j| {
        j.tenant = 1; // the generator draws tenant 0; move filler to "mix"
        j
    });
    jobs.extend(filler);
    jobs.sort_by_key(|j| j.arrival);
    jobs
}

fn plan() -> FaultPlan {
    FaultPlan::new(
        vec![
            FaultEvent {
                at: SimTime(200_000_000),
                node: 3,
                kind: FaultKind::NodeCrash,
            },
            FaultEvent {
                at: SimTime(350_000_000),
                node: 9,
                kind: FaultKind::NodePreempt {
                    return_after: SimDuration::from_millis(400),
                },
            },
        ],
        CheckpointSpec::every(
            2,
            SimDuration::from_millis(20),
            SimDuration::from_millis(80),
        ),
    )
}

fn canonical(threads: usize, shards: u32, faulted: bool) -> String {
    let env = SimEnv::paper().with_engine_threads(threads);
    let svc = ClusterService::new(cfg(shards)).unwrap();
    let plan = if faulted { plan() } else { FaultPlan::none() };
    let report = svc
        .serve(stream(&env), &plan, &ServeOptions::default())
        .unwrap()
        .report;
    assert_eq!(
        report.completed_jobs() + report.failed_jobs() + report.rejected_jobs(),
        44
    );
    report.canonical_string()
}

#[test]
fn sim_backed_service_is_invariant_across_shards_and_engine_threads() {
    let reference = canonical(1, 1, false);
    assert_eq!(reference, canonical(1, 2, false), "shard count leaked");
    assert_eq!(reference, canonical(2, 1, false), "engine threads leaked");
    assert_eq!(
        reference,
        canonical(2, 2, false),
        "shard x thread combination leaked"
    );
}

#[test]
fn sim_backed_service_is_invariant_under_a_fault_plan() {
    let reference = canonical(1, 1, true);
    assert!(
        !reference.contains("faults restarts=0 "),
        "the seeded crash must interrupt a held job:\n{reference}"
    );
    assert_eq!(reference, canonical(1, 2, true), "shard count leaked");
    assert_eq!(reference, canonical(2, 2, true), "engine threads leaked");
}
