//! Property-based robustness: randomly generated layered flow-graph
//! applications must terminate without stalling, be deterministic, and
//! agree exactly between the simulator and the calm testbed (the two
//! engines are the same machine when every noise source is off).

use desim::SimDuration;
use dvns::desim;
use dvns::dps::prelude::*;
use dvns::netmodel::NetParams;
use dvns::sim::{simulate, RunReport, SimConfig, TimingMode};
use dvns::testbed::TestbedParams;
use simrng::{Rng, Xoshiro256};

/// One fan-out: (target index in the next layer, copies, payload bytes,
/// charge µs).
type FanOut = (usize, u64, u64, u64);

/// Generation-time description of one random application.
#[derive(Clone, Debug)]
struct AppSpec {
    workers: u32,
    nodes: u32,
    /// ops per layer
    layers: Vec<usize>,
    /// edges[l][i] = fan-outs of op i in layer l
    edges: Vec<Vec<Vec<FanOut>>>,
}

/// How many objects eventually reach the sink.
fn expected_sink_arrivals(spec: &AppSpec) -> u64 {
    let mut counts: Vec<Vec<u64>> = spec.layers.iter().map(|&n| vec![0; n]).collect();
    counts[0][0] = 1; // the start object enters the first op
    for (l, layer_edges) in spec.edges.iter().enumerate() {
        for (i, outs) in layer_edges.iter().enumerate() {
            let arriving = counts[l][i];
            for &(tgt, copies, _, _) in outs {
                counts[l + 1][tgt] += arriving * copies;
            }
        }
    }
    counts.last().expect("layers nonempty").iter().sum()
}

struct Payload {
    bytes: u64,
}
impl DataObject for Payload {
    fn wire_size(&self) -> u64 {
        self.bytes
    }
}

fn build(spec: &AppSpec) -> Application {
    let mut b = AppBuilder::new("random");
    let node_map: Vec<u32> = (0..spec.workers).map(|t| t % spec.nodes).collect();
    b.thread_group_on_nodes("workers", &node_map);
    let main = b.thread_on_node("main", 0);

    // Declare all ops, then the sink.
    let mut ids: Vec<Vec<OpId>> = Vec::new();
    for (l, &n) in spec.layers.iter().enumerate() {
        let mut layer = Vec::new();
        for i in 0..n {
            layer.push(b.declare(&format!("op{l}_{i}"), OpKind::Leaf));
        }
        ids.push(layer);
    }
    let sink = b.declare("sink", OpKind::Merge);

    // Bodies: forward with the generated fan-outs.
    for (l, layer_edges) in spec.edges.iter().enumerate() {
        for (i, outs) in layer_edges.iter().enumerate() {
            let outs = outs.clone();
            let next: Vec<OpId> = ids[l + 1].clone();
            b.body(ids[l][i], move |_, _| {
                let outs = outs.clone();
                let next = next.clone();
                op_fn(move |_obj: DataObj, ctx: &mut dyn OpCtx| {
                    for &(tgt, copies, bytes, us) in &outs {
                        for _ in 0..copies {
                            ctx.charge(SimDuration::from_micros(us));
                            ctx.post(next[tgt], Box::new(Payload { bytes }));
                        }
                    }
                })
            });
        }
    }
    // Last layer feeds the sink 1:1.
    let last = spec.layers.len() - 1;
    for &id in &ids[last] {
        b.body(id, move |_, _| {
            op_fn(move |obj: DataObj, ctx: &mut dyn OpCtx| {
                ctx.charge(SimDuration::from_micros(3));
                ctx.post(sink, obj);
            })
        });
    }
    let expected = expected_sink_arrivals(spec);
    b.body(sink, move |_, _| {
        let mut seen = 0u64;
        op_fn(move |_obj: DataObj, ctx: &mut dyn OpCtx| {
            seen += 1;
            if seen == expected {
                ctx.terminate();
            }
        })
    });

    // Edges: layer l -> l+1 wherever a fan-out mentions the target, plus
    // last layer -> sink.
    for (l, layer_edges) in spec.edges.iter().enumerate() {
        for (i, outs) in layer_edges.iter().enumerate() {
            let mut targets: Vec<usize> = outs.iter().map(|&(t, ..)| t).collect();
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                b.edge(ids[l][i], ids[l + 1][t], round_robin("workers"));
            }
        }
    }
    for &id in &ids[last] {
        b.edge(id, sink, to_thread(main));
    }
    b.start(ids[0][0], main, || Box::new(Payload { bytes: 16 }));
    b.build().expect("random app assembles")
}

fn gen_spec(rng: &mut Xoshiro256) -> AppSpec {
    // 2..4 layers of 1..3 ops; every op fans out to >= 1 target.
    let workers = 1 + rng.gen_below(4) as u32;
    let nodes = (1 + rng.gen_below(3) as u32).min(workers);
    let n_layers = 2 + rng.gen_index(3);
    let layers: Vec<usize> = (0..n_layers).map(|_| 1 + rng.gen_index(3)).collect();
    let mut edges = Vec::new();
    for l in 0..layers.len() - 1 {
        let mut layer = Vec::new();
        for _ in 0..layers[l] {
            let fanout = 1 + rng.gen_index(2);
            let mut outs = Vec::new();
            for _ in 0..fanout {
                let tgt = rng.gen_index(layers[l + 1]);
                let copies = 1 + rng.gen_below(3);
                let bytes = 64 + rng.gen_below(100_000);
                let us = 5 + rng.gen_below(2_000);
                outs.push((tgt, copies, bytes, us));
            }
            layer.push(outs);
        }
        edges.push(layer);
    }
    AppSpec {
        workers,
        nodes,
        layers,
        edges,
    }
}

fn cfg() -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(10),
        ..SimConfig::default()
    }
}

fn run_sim(spec: &AppSpec) -> RunReport {
    simulate(&build(spec), NetParams::fast_ethernet(), &cfg()).expect("random app runs")
}

#[test]
fn random_apps_terminate() {
    let mut rng = Xoshiro256::seed_from_u64(0x7E57_0001);
    for case in 0..24 {
        let spec = gen_spec(&mut rng);
        let r = run_sim(&spec);
        assert!(r.terminated, "case {case}: did not terminate");
        assert!(r.completion > desim::SimTime::ZERO);
    }
}

#[test]
fn random_apps_are_deterministic() {
    let mut rng = Xoshiro256::seed_from_u64(0x7E57_0002);
    for case in 0..24 {
        let spec = gen_spec(&mut rng);
        let a = run_sim(&spec);
        let b = run_sim(&spec);
        assert_eq!(a.completion, b.completion, "case {case}");
        assert_eq!(a.steps, b.steps, "case {case}");
        assert_eq!(a.net.wire_bytes, b.net.wire_bytes, "case {case}");
    }
}

#[test]
fn calm_testbed_equals_simulator_on_random_apps() {
    let mut rng = Xoshiro256::seed_from_u64(0x7E57_0003);
    for case in 0..24 {
        let spec = gen_spec(&mut rng);
        let sim = run_sim(&spec);
        let app = build(&spec);
        let calm = dvns::testbed::measure(
            &app,
            TestbedParams::calm(NetParams::fast_ethernet()),
            1,
            &cfg(),
        )
        .expect("calm testbed runs");
        assert_eq!(sim.completion, calm.completion, "case {case}");
        assert_eq!(sim.steps, calm.steps, "case {case}");
    }
}

#[test]
fn noisy_testbed_terminates_random_apps_too() {
    let mut rng = Xoshiro256::seed_from_u64(0x7E57_0004);
    for case in 0..24 {
        let spec = gen_spec(&mut rng);
        let app = build(&spec);
        let r = dvns::testbed::measure(&app, TestbedParams::sun_cluster(), 2, &cfg())
            .expect("noisy testbed runs");
        assert!(r.terminated, "case {case}: stall under noise");
    }
}
