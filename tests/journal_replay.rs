//! The journal's two headline properties (ISSUE 7 acceptance criteria):
//!
//! 1. **Replay**: re-executing a run against a recorded journal, pausing at
//!    *any* prefix (the reconstructed intermediate state) and resuming,
//!    produces a byte-identical canonical report and an event stream with
//!    no divergence from the recording — at `engine_threads` ∈ {1, 4} and
//!    under a seeded fault plan.
//! 2. **Pinpointing**: an intentionally perturbed run (one injected
//!    tie-break swap) yields a first-diverging-event diagnostic naming the
//!    ticket, virtual time and op — not a whole-report diff.

use dvns::desim::{SimDuration, SimTime};
use dvns::faults::FaultGenConfig;
use dvns::lu_app::{build_lu_app, predict_lu_with_fabric, DataMode, LuConfig};
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::journal::{replay, replay_with_fabric, Journal};
use dvns::sim::{FaultFabric, SimConfig, TimingMode};

fn simcfg(threads: usize) -> SimConfig {
    SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        record_journal: true,
        engine_threads: threads,
        ..SimConfig::default()
    }
}

fn lu_cfg() -> LuConfig {
    let mut cfg = LuConfig::new(288, 36, 4);
    cfg.mode = DataMode::Ghost;
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    cfg
}

/// Prefix lengths spanning the whole journal: empty, interior points, full.
fn prefixes(len: usize) -> [usize; 5] {
    [0, len / 4, len / 2, 3 * len / 4, len]
}

#[test]
fn replay_from_any_prefix_is_byte_identical() {
    let net = NetParams::fast_ethernet();
    let cfg = lu_cfg();
    let (app, _) = build_lu_app(cfg.clone());
    let baseline = dvns::sim::simulate(&app, net, &simcfg(1)).unwrap();
    let canonical = baseline.canonical_string();
    let recorded = baseline.journal.as_ref().expect("journal recorded");
    assert!(!recorded.is_empty());

    for threads in [1usize, 4] {
        let mut last_time = SimTime::ZERO;
        let mut last_steps = 0u64;
        for prefix in prefixes(recorded.len()) {
            let (app, _) = build_lu_app(cfg.clone());
            let out = replay(&app, net, &simcfg(threads), recorded, prefix).unwrap();
            assert!(
                out.divergence.is_none(),
                "replay diverged (threads={threads} prefix={prefix}): {}",
                out.divergence.unwrap()
            );
            assert_eq!(
                out.report.canonical_string(),
                canonical,
                "replayed report not byte-identical (threads={threads} prefix={prefix})"
            );
            // The reconstructed state advances monotonically with the
            // prefix and never past the recorded completion.
            assert!(out.prefix_time >= last_time && out.prefix_time <= baseline.completion);
            assert!(out.prefix_steps >= last_steps && out.prefix_steps <= baseline.steps);
            last_time = out.prefix_time;
            last_steps = out.prefix_steps;
        }
        assert_eq!(last_steps, baseline.steps, "full prefix reaches the end");
    }
}

#[test]
fn replay_under_a_seeded_fault_plan_is_byte_identical() {
    let net = NetParams::fast_ethernet();
    let mut gen = FaultGenConfig::quiet(4, SimDuration::from_secs(400));
    gen.slowdowns = 3;
    gen.degrades = 2;
    let plan = gen.generate(0xFA_17);
    let cfg = lu_cfg();

    let mut fabric = FaultFabric::new(net, &plan);
    let baseline = predict_lu_with_fabric(&cfg, &mut fabric, &simcfg(1)).unwrap();
    let canonical = baseline.report.canonical_string();
    let recorded = baseline.report.journal.as_ref().expect("journal recorded");
    // The plan's rate windows open the stream (RateWindow entries at t=0).
    assert!(recorded
        .entries
        .iter()
        .take_while(|e| e.vtime == SimTime::ZERO)
        .any(|e| e.event.kind_name() == "RateWindow"));

    for threads in [1usize, 4] {
        for prefix in prefixes(recorded.len()) {
            let (app, _) = build_lu_app(cfg.clone());
            let mut fabric = FaultFabric::new(net, &plan);
            let out =
                replay_with_fabric(&app, &mut fabric, &simcfg(threads), recorded, prefix).unwrap();
            assert!(
                out.divergence.is_none(),
                "faulted replay diverged (threads={threads} prefix={prefix}): {}",
                out.divergence.unwrap()
            );
            assert_eq!(
                out.report.canonical_string(),
                canonical,
                "faulted replay not byte-identical (threads={threads} prefix={prefix})"
            );
        }
    }
}

/// Runs with `tie_break_swap = Some(n)` for growing n until the stream
/// actually diverges from `baseline` (the n-th same-instant batch exists
/// and its swap is observable). Returns the pinpointed divergence.
fn first_perturbed_divergence(
    cfg: &LuConfig,
    net: NetParams,
    threads: usize,
    baseline: &Journal,
) -> dvns::sim::Divergence {
    for n in 0..32u64 {
        let mut sc = simcfg(threads);
        sc.tie_break_swap = Some(n);
        let (app, _) = build_lu_app(cfg.clone());
        let report = dvns::sim::simulate(&app, net, &sc).unwrap();
        let j = report.journal.expect("journal recorded");
        if let Some(d) = j.first_divergence(baseline) {
            return d;
        }
    }
    panic!("no same-instant completion batch found to perturb (threads={threads})");
}

#[test]
fn injected_tie_break_swap_is_pinpointed() {
    let net = NetParams::fast_ethernet();
    let cfg = lu_cfg();
    let (app, _) = build_lu_app(cfg.clone());
    let baseline = dvns::sim::simulate(&app, net, &simcfg(1)).unwrap();
    let recorded = baseline.journal.as_ref().unwrap();

    for threads in [1usize, 4] {
        let d = first_perturbed_divergence(&cfg, net, threads, recorded);
        // The diagnostic names the event id, the commit ticket, the
        // virtual time and the op — the acceptance criterion.
        assert!(d.ticket.is_some(), "divergence carries a ticket: {d}");
        assert!(d.op.is_some(), "divergence carries an op: {d}");
        assert!(d.vtime_ours.is_some(), "divergence carries a vtime: {d}");
        // Visible under `--nocapture`; the README quotes this output.
        println!("pinpointed (threads={threads}): {d}");
        let msg = d.to_string();
        assert!(msg.contains("first diverging event #"), "{msg}");
        assert!(msg.contains("ticket"), "{msg}");
        assert!(msg.contains("op"), "{msg}");
        assert!(msg.contains("vtime"), "{msg}");
    }
}
