//! Fault injection end to end: a deterministic, seeded fault schedule
//! played against both a single simulated application and the cluster
//! server, with checkpoint/restart costs and an elastic-recovery policy.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use dvns::cluster::{ClusterSim, ProfileCache};
use dvns::desim::{SimDuration, SimTime};
use dvns::faults::{CheckpointSpec, FaultGenConfig};
use dvns::workload::{fault_server_policies, sim_job_set, SimEnv};

fn main() {
    let env = SimEnv::paper();

    // --- One application under a crash -----------------------------------
    // A node crash mid-run maps onto the DPS thread-removal machinery at
    // the next iteration boundary; the work since the last checkpoint is
    // replayed on the survivors.
    let w = env.lu_workload(env.lu_sized(288, 36, 8));
    let quiet_span = dvns::cluster::Workload::profile(&w, 8)
        .expect("quiet LU profile")
        .total_span();
    let app_plan = FaultGenConfig {
        crashes: 1,
        checkpoint: CheckpointSpec::every(
            3,
            SimDuration::from_millis(50),
            SimDuration::from_millis(200),
        ),
        ..FaultGenConfig::quiet(8, quiet_span.mul_f64(0.8))
    }
    .generate(env.seed);
    let run = w
        .realize_under_faults(8, &app_plan)
        .expect("faulted realization run")
        .expect("basic LU graphs realize fault schedules");
    println!("== LU under a seeded crash (seed {}) ==", env.seed);
    println!("  quiet span    {:>8.2}s", quiet_span.as_secs_f64());
    println!(
        "  faulted span  {:>8.2}s   restarts {}   lost work {:.2}s",
        run.profile.total_span().as_secs_f64(),
        run.restarts,
        run.lost_work.as_secs_f64()
    );
    println!("  node schedule {:?}\n", run.schedule);

    // --- The cluster server under the same kind of weather ----------------
    // Rigid restarts interrupted jobs from scratch; malleable does too but
    // reallocates; elastic recovery requeues with backoff and resumes from
    // the last checkpoint.
    let jobs = sim_job_set(&env);
    let mut cache = ProfileCache::new();
    let quiet =
        ClusterSim::new(8, dvns::cluster::SchedulePolicy::Rigid).run_with_cache(&jobs, &mut cache);
    let server_plan = FaultGenConfig {
        crashes: 1,
        preempts: 1,
        checkpoint: CheckpointSpec::every(
            2,
            SimDuration::from_millis(50),
            SimDuration::from_millis(200),
        ),
        ..FaultGenConfig::quiet(8, (quiet.makespan - SimTime::ZERO).mul_f64(0.6))
    }
    .generate(env.seed);

    println!("== cluster server under crash + preemption ==");
    for (label, policy) in fault_server_policies() {
        let report = ClusterSim::new(8, policy).run_with_faults(&jobs, &server_plan, &mut cache);
        println!(
            "  {label:<10} makespan {:>7.2}s   mean completion {:>7.2}s   \
             restarts {}   lost work {:.2}s   degraded {:.2}s",
            report.makespan.as_secs_f64(),
            report.mean_completion_secs(),
            report.total_restarts(),
            report.total_lost_work().as_secs_f64(),
            report.total_degraded().as_secs_f64()
        );
    }
    println!();
    println!("all three policies face the identical fault schedule. rigid and malleable");
    println!("restart interrupted jobs from scratch; elastic recovery resumes from the");
    println!("last checkpoint and pays a requeue backoff before rescheduling — a delay");
    println!("that dominates at this toy scale but amortizes on long jobs.");
}
