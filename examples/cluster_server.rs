//! The paper's future work, runnable end to end: a cluster server
//! scheduling real simulated applications — two block LU factorizations
//! and a Jacobi stencil, side by side — whose node allocations vary
//! dynamically based on per-iteration efficiency profiles obtained from
//! dps-sim runs of each application.
//!
//! Run with: `cargo run --release --example cluster_server`

use dvns::cluster::{ClusterSim, ProfileCache};
use dvns::workload::{server_policies, sim_job_set, SimEnv};

fn main() {
    let env = SimEnv::paper();
    // One shared profile cache: every (workload, node count) pair is
    // simulated once, then both policies price iterations off the memo.
    let mut cache = ProfileCache::new();

    for (label, policy) in server_policies() {
        let jobs = sim_job_set(&env);
        let report = ClusterSim::new(8, policy).run_with_cache(&jobs, &mut cache);
        println!("== {label} ==");
        for rec in &report.jobs {
            println!(
                "  {:<10} start {:>6.2}s   completion {:>6.2}s   allocations {:?}",
                rec.name,
                rec.start.as_secs_f64(),
                rec.completion.as_secs_f64(),
                rec.allocations
            );
        }
        println!(
            "  makespan {:.2}s   mean completion {:.2}s   allocation efficiency {:.1}%\n",
            report.makespan.as_secs_f64(),
            report.mean_completion_secs(),
            report.allocation_efficiency() * 100.0
        );
    }
    println!(
        "{} simulator runs were enough for both policies.",
        cache.len()
    );
    println!("the malleable policy shrinks the LU jobs once their simulated efficiency");
    println!("drops below 50%, freeing nodes for the queued stencil — earlier completions");
    println!("and higher useful-work density, the paper's motivation for dynamic allocation.");
}
