//! The paper's future work, runnable: a cluster server executing several
//! malleable applications whose node allocations vary dynamically, compared
//! against a rigid scheduler.
//!
//! Run with: `cargo run --release --example cluster_server`

use dvns::cluster::server::{lu_like_job, ClusterSim, JobSpec, SchedulePolicy};
use dvns::desim::{SimDuration, SimTime};

fn main() {
    // Four LU-like applications arriving over 200s on a 16-node cluster.
    let jobs: Vec<JobSpec> = [
        ("lu-a", 0u64, 8u32, 1600u64),
        ("lu-b", 30, 8, 1200),
        ("render-c", 60, 16, 2400),
        ("lu-d", 200, 4, 600),
    ]
    .into_iter()
    .map(|(name, arrival_s, nodes, work_s)| JobSpec {
        name: name.to_string(),
        arrival: SimTime(arrival_s * 1_000_000_000),
        requested_nodes: nodes,
        phases: lu_like_job(SimDuration::from_secs(work_s), 8),
    })
    .collect();

    for (label, policy) in [
        ("rigid (static allocations)", SchedulePolicy::Rigid),
        (
            "malleable (release below 50% efficiency)",
            SchedulePolicy::Malleable {
                min_efficiency: 0.5,
            },
        ),
    ] {
        let report = ClusterSim::new(16, policy).run(&jobs);
        println!("== {label} ==");
        for (name, start, completion) in &report.jobs {
            println!(
                "  {name:<10} start {:>8.1}s   completion {:>8.1}s",
                start.as_secs_f64(),
                completion.as_secs_f64()
            );
        }
        println!(
            "  makespan {:.1}s   mean completion {:.1}s   allocation efficiency {:.1}%\n",
            report.makespan.as_secs_f64(),
            report.mean_completion_secs(),
            report.allocation_efficiency() * 100.0
        );
    }
    println!("the malleable policy serves the same workload with earlier completions and");
    println!("higher useful-work density — the paper's motivation for dynamic allocation.");
}
