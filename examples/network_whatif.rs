//! Parametric what-if studies (paper §4): once the application is modeled,
//! varying the platform parameters isolates the performance factors —
//! evaluate a faster network, or find which kernel dominates.
//!
//! Run with: `cargo run --release --example network_whatif`

use dvns::desim::SimDuration;
use dvns::lu_app::{predict_lu, DataMode, LuConfig};
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::{SimConfig, TimingMode};

fn base_cfg() -> LuConfig {
    let mut cfg = LuConfig::new(2592, 162, 8);
    cfg.mode = DataMode::Ghost;
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    cfg.pipelined = true;
    cfg
}

fn main() {
    let simcfg = SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        ..SimConfig::default()
    };
    let cfg = base_cfg();

    println!("LU 2592², r=162, 8 nodes, pipelined — network what-if:\n");
    println!(
        "{:<28} {:>12} {:>14}",
        "network", "latency", "predicted [s]"
    );
    for (label, params) in [
        ("Fast Ethernet (paper)", NetParams::fast_ethernet()),
        ("Gigabit Ethernet", NetParams::gigabit_ethernet()),
        ("ideal (free network)", NetParams::ideal()),
    ] {
        let run = predict_lu(&cfg, params, &simcfg).expect("simulation runs");
        println!(
            "{:<28} {:>12} {:>14.1}",
            label,
            format!("{}", params.latency),
            run.factorization_time.as_secs_f64()
        );
    }

    // Bandwidth sweep: where does the network stop mattering?
    println!("\nbandwidth sweep (latency fixed at 70us):");
    for mbps in [50.0, 100.0, 250.0, 500.0, 1000.0] {
        let mut p = NetParams::fast_ethernet();
        p.up_bytes_per_sec = mbps * 1e6 / 8.0;
        p.down_bytes_per_sec = p.up_bytes_per_sec;
        let run = predict_lu(&cfg, p, &simcfg).expect("simulation runs");
        println!(
            "  {:>6.0} Mb/s  ->  {:6.1}s",
            mbps,
            run.factorization_time.as_secs_f64()
        );
    }

    // Kernel what-if: a node with 2x faster multiplication hardware.
    println!("\nkernel what-if (Fast Ethernet):");
    let mut fast_gemm = PlatformProfile::ultrasparc_ii_440();
    fast_gemm.gemm_flops_per_sec *= 2.0;
    let mut cfg2 = base_cfg();
    cfg2.cost = Some(LuCost::new(fast_gemm));
    let a = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg).expect("simulation runs");
    let b = predict_lu(&cfg2, NetParams::fast_ethernet(), &simcfg).expect("simulation runs");
    println!(
        "  baseline {:.1}s  ->  2x faster gemm {:.1}s  (speedup {:.2}x: multiplication dominates)",
        a.factorization_time.as_secs_f64(),
        b.factorization_time.as_secs_f64(),
        a.factorization_time.as_secs_f64() / b.factorization_time.as_secs_f64()
    );
}
