//! Quickstart: the paper's Figure 1 flow graph — split, parallel compute,
//! merge — simulated on a 4-node cluster, with the reconstructed schedule
//! printed as a Gantt chart (the paper's Figure 2).
//!
//! Run with: `cargo run --example quickstart`

use dvns::desim::SimDuration;
use dvns::dps::prelude::*;
use dvns::netmodel::NetParams;
use dvns::sim::{simulate, SimConfig, TimingMode};

struct Work(u64);
struct Piece {
    bytes: u64,
}
struct Answer;

dvns::dps::wire_size_fixed!(Work, 8);
dvns::dps::wire_size_fixed!(Answer, 8);
impl DataObject for Piece {
    fn wire_size(&self) -> u64 {
        self.bytes
    }
}

fn main() {
    let mut b = AppBuilder::new("quickstart");
    b.thread_group("workers", 3); // leaf operations on nodes 0..3
    let main = b.thread_on_node("main", 3); // split + merge on node 3

    let split = b.declare("split", OpKind::Split);
    let compute = b.declare("compute", OpKind::Leaf);
    let merge = b.declare("merge", OpKind::Merge);

    b.body(split, move |_, _| {
        op_fn(move |obj: DataObj, ctx: &mut dyn OpCtx| {
            let w: Work = downcast(obj);
            for i in 0..w.0 {
                // Generating each subtask costs 2 ms; each carries 200 kB.
                ctx.charge(SimDuration::from_millis(2));
                ctx.post(compute, Box::new(Piece { bytes: 200_000 + i }));
            }
        })
    });
    b.body(compute, move |_, _| {
        op_fn(move |obj: DataObj, ctx: &mut dyn OpCtx| {
            let _p: Piece = downcast(obj);
            ctx.charge(SimDuration::from_millis(40)); // the real work
            ctx.post(merge, Box::new(Answer));
        })
    });
    b.body(merge, move |_, _| {
        let mut seen = 0;
        op_fn(move |_obj: DataObj, ctx: &mut dyn OpCtx| {
            ctx.charge(SimDuration::from_micros(200)); // aggregation
            seen += 1;
            if seen == 6 {
                ctx.terminate();
            }
        })
    });

    b.edge(split, compute, round_robin("workers"));
    b.edge(compute, merge, to_thread(main));
    b.start(split, main, || Box::new(Work(6)));
    let app = b.build().expect("valid application");

    let cfg = SimConfig {
        timing: TimingMode::ChargedOnly,
        record_trace: true,
        ..SimConfig::default()
    };
    let report = simulate(&app, NetParams::fast_ethernet(), &cfg).expect("simulation runs");

    println!("predicted running time: {}", report.completion);
    println!(
        "atomic steps executed: {}, transfers: {}",
        report.steps, report.net.flows_completed
    );
    println!(
        "overall efficiency: {:.1}%\n",
        report.overall_efficiency() * 100.0
    );
    println!("reconstructed schedule (first letter of each operation):");
    print!("{}", report.trace.expect("trace recorded").gantt(72));
}
