//! The paper's evaluation application end to end: a distributed block LU
//! factorization, really computed through the DPS flow graph (direct
//! execution), verified against the sequential reference, and compared
//! across flow-graph variants with predicted vs "measured" times.
//!
//! Run with: `cargo run --release --example lu_factorization`

use dvns::desim::SimDuration;
use dvns::lu_app::{predict_lu, DataMode, LuConfig};
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::{SimConfig, TimingMode};
use dvns::testbed::TestbedParams;

fn main() {
    let simcfg = SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        ..SimConfig::default()
    };
    let cost = LuCost::new(PlatformProfile::ultrasparc_ii_440());

    // 1. Correctness: really factorize a 384x384 matrix through the DPS
    //    graph and check P·A = L·U.
    let mut cfg = LuConfig::new(384, 48, 4);
    cfg.mode = DataMode::Real;
    cfg.cost = Some(cost);
    cfg.pipelined = true;
    let run = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg).expect("simulation runs");
    println!(
        "384x384 LU through the DPS flow graph: residual {:.2e} (verified)",
        run.residual.expect("real mode")
    );

    // 2. The paper's scale: 2592x2592 on 8 UltraSparc nodes, PDEXEC NOALLOC.
    println!("\n2592x2592, 8 nodes, r=216 — predicted vs testbed-measured:");
    for (label, pipelined, fc) in [
        ("Basic", false, None),
        ("P    ", true, None),
        ("P+FC ", true, Some(8)),
    ] {
        let mut cfg = LuConfig::new(2592, 216, 8);
        cfg.mode = DataMode::Ghost;
        cfg.cost = Some(cost);
        cfg.pipelined = pipelined;
        cfg.flow_control = fc;
        let predicted =
            predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg).expect("simulation runs");
        let measured = dvns::lu_app::measure_lu(&cfg, TestbedParams::sun_cluster(), 7, &simcfg)
            .expect("testbed runs");
        let p = predicted.factorization_time.as_secs_f64();
        let m = measured.factorization_time.as_secs_f64();
        println!(
            "  {label}  predicted {p:6.1}s   measured {m:6.1}s   error {:+.1}%",
            (p - m) / m * 100.0
        );
    }
    println!("\n(the simulation itself ran in milliseconds on this machine — PDEXEC portability)");
}
