//! A second application on the framework: Jacobi heat diffusion with
//! neighborhood halo exchanges (the paper's "relative thread indices"
//! communication pattern), contrasting its *flat* dynamic efficiency with
//! the LU factorization's decay — the profile that decides whether dynamic
//! node deallocation pays off.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use dvns::cluster::{profile_from_report, recommend_removal, ThresholdPolicy};
use dvns::desim::SimDuration;
use dvns::lu_app::DataMode;
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::{SimConfig, TimingMode};
use dvns::stencil_app::{predict_stencil, StencilConfig};

fn main() {
    let simcfg = SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        ..SimConfig::default()
    };

    // 1. Correctness: really diffuse a 64x64 grid through the flow graph.
    let mut small = StencilConfig::new(64, 8, 4);
    small.mode = DataMode::Real;
    small.cost = Some(PlatformProfile::modern_x86());
    let run =
        predict_stencil(&small, NetParams::fast_ethernet(), &simcfg).expect("simulation runs");
    println!(
        "64x64 Jacobi through the DPS flow graph: max deviation from the \
         sequential reference {:.2e}",
        run.error.expect("real mode")
    );

    // 2. Performance: 4096x4096, 24 sweeps, 8 UltraSparc nodes.
    let mut cfg = StencilConfig::new(4096, 24, 8);
    cfg.mode = DataMode::Ghost;
    println!("\n4096x4096, 24 sweeps, 8 nodes:");
    for (label, sync) in [
        ("synchronized (barrier)", true),
        ("asynchronous (pipelined)", false),
    ] {
        let mut c = cfg.clone();
        c.synchronized = sync;
        let run =
            predict_stencil(&c, NetParams::fast_ethernet(), &simcfg).expect("simulation runs");
        println!(
            "  {label:<26} predicted {:6.2}s",
            run.sweep_time.as_secs_f64()
        );
    }

    // 3. Dynamic efficiency: flat for the stencil, decaying for LU.
    let stencil_run =
        predict_stencil(&cfg, NetParams::fast_ethernet(), &simcfg).expect("simulation runs");
    let stencil_profile = profile_from_report(&stencil_run.report);

    let mut lu_cfg = dvns::lu_app::LuConfig::new(2592, 324, 8);
    lu_cfg.mode = DataMode::Ghost;
    lu_cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));
    let lu_run = dvns::lu_app::predict_lu(&lu_cfg, NetParams::fast_ethernet(), &simcfg)
        .expect("simulation runs");
    let lu_profile = profile_from_report(&lu_run.report);

    println!("\nper-iteration dynamic efficiency (8 nodes):");
    println!("  iteration   stencil      LU");
    for i in 0..8 {
        let se = stencil_profile.points.get(i).map_or(0.0, |p| p.efficiency);
        let le = lu_profile.points.get(i).map_or(0.0, |p| p.efficiency);
        println!("  {:>9}   {:6.1}%   {:6.1}%", i + 1, se * 100.0, le * 100.0);
    }

    // The LU profile starts near 35% on 8 nodes, so pick a threshold below
    // that — above it the answer would be "request fewer nodes to begin
    // with", which the policy leaves to the submitter.
    let policy = ThresholdPolicy {
        min_efficiency: 0.3,
        release_fraction: 0.5,
    };
    println!(
        "\nremoval policy (threshold {:.0}%): stencil -> {:?}, LU -> {:?}",
        policy.min_efficiency * 100.0,
        recommend_removal(&stencil_profile, 8, policy),
        recommend_removal(&lu_profile, 8, policy),
    );
    println!("the stencil keeps its nodes busy; LU should hand nodes back mid-run.");
}
