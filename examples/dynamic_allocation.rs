//! Dynamic node allocation, driven by the simulator's dynamic-efficiency
//! prediction (the paper's core motivation):
//!
//! 1. predict the LU run on 8 nodes and extract its per-iteration dynamic
//!    efficiency;
//! 2. let the threshold policy recommend a thread-removal plan;
//! 3. re-run with the plan and compare running time and freed capacity.
//!
//! Run with: `cargo run --release --example dynamic_allocation`

use dvns::cluster::{profile_from_report, recommend_removal, ThresholdPolicy};
use dvns::desim::SimDuration;
use dvns::lu_app::{predict_lu, DataMode, LuConfig};
use dvns::netmodel::NetParams;
use dvns::perfmodel::{LuCost, PlatformProfile};
use dvns::sim::{SimConfig, TimingMode};

fn main() {
    let simcfg = SimConfig {
        timing: TimingMode::ChargedOnly,
        step_overhead: SimDuration::from_micros(50),
        ..SimConfig::default()
    };
    let mut cfg = LuConfig::new(2592, 324, 8);
    cfg.workers = 8;
    cfg.mode = DataMode::Ghost;
    cfg.cost = Some(LuCost::new(PlatformProfile::ultrasparc_ii_440()));

    // 1. Predict and inspect the dynamic efficiency.
    let base = predict_lu(&cfg, NetParams::fast_ethernet(), &simcfg).expect("base run");
    let profile = profile_from_report(&base.report);
    println!("predicted dynamic efficiency on 8 nodes:");
    for p in &profile.points {
        println!(
            "  {:8}  {:7.1}s   efficiency {:5.1}%",
            p.label,
            p.span.as_secs_f64(),
            p.efficiency * 100.0
        );
    }

    // 2. Policy recommendation.
    let policy = ThresholdPolicy {
        min_efficiency: 0.33,
        release_fraction: 0.5,
    };
    let plan = recommend_removal(&profile, cfg.workers, policy);
    println!(
        "\nthreshold policy (eff < {:.0}%): removal plan {:?}",
        policy.min_efficiency * 100.0,
        plan
    );

    // 3. Re-run with the recommended plan.
    let mut planned = cfg.clone();
    planned.removal = plan;
    let adapted = predict_lu(&planned, NetParams::fast_ethernet(), &simcfg).expect("adapted run");

    let t0 = base.factorization_time.as_secs_f64();
    let t1 = adapted.factorization_time.as_secs_f64();
    println!("\nstatic 8 nodes:   {t0:7.1}s");
    println!(
        "with removal:     {t1:7.1}s  ({:+.1}%)",
        (t1 - t0) / t0 * 100.0
    );

    // Node-seconds actually allocated (what the cluster could reassign).
    let ns = |r: &dvns::sim::RunReport| -> f64 { r.intervals.iter().map(|i| i.node_seconds).sum() };
    let freed = ns(&base.report) - ns(&adapted.report);
    println!(
        "allocated capacity: {:.0} vs {:.0} node·s  ->  {:.0} node·s freed for other applications",
        ns(&base.report),
        ns(&adapted.report),
        freed
    );
}
